// sim::BatchSimulator — lane-batched execution of one shared ExecPlan.
//
// A fault campaign (or a multi-stimulus evaluation) runs the *same* design
// over N independent input/fault trajectories. The scalar engines fetch and
// dispatch the instruction stream once per run; this backend fetches each
// 48-byte ExecInstr once and applies it across `lanes` independent runs in
// an inner loop the compiler can auto-vectorize:
//
//   * value storage is lane-major per slot: slot s of lane l lives at
//     values_[s * lanes + l], in 64-byte-aligned contiguous arrays, so the
//     per-instruction inner loop reads/writes `lanes` consecutive words;
//   * the per-cycle loop is specialized for fixed trip counts (4/8/16/32
//     lanes) with a generic path for any other count, and the whole
//     kernel set is compiled per-ISA (baseline + x86-64-v3/AVX2) with the
//     widest supported set picked at runtime (sim/batch_kernels.hpp);
//   * registers, memories and the commit schedules are replicated per lane;
//   * per-lane poke/peek/reset APIs (poke_input(lane, id, v),
//     value(lane, id), step_all()) advance all lanes in lockstep.
//
// Fault injection is per-lane: each lane owns its armed site (LaneFault) and
// flip schedule. The transforms reproduce fault::SiteInjector's BitVec math
// in canonical sign-extended int64 form, and the cycle protocol reproduces
// Engine::reset()/step() ordering exactly (including the double eval per
// testbench cycle and the cycle-0 SEU flip on reset), so every lane's
// trajectory is bitwise-identical to the same run on a scalar
// CompiledSimulator — asserted every-node-every-cycle by tests/batch_test.
//
// Lanes that diverge (finish, detect, hang) are masked out by the harness
// (axis::BatchStreamTestbench) rather than forcing a batch-wide slow path:
// the batch keeps stepping, finished lanes simply stop being driven/read.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "base/bitvec.hpp"
#include "base/deadline.hpp"
#include "netlist/exec_plan.hpp"
#include "netlist/ir.hpp"
#include "sim/engine.hpp"

namespace hlshc::sim {

/// Minimal cache-line-aligned allocator for the lane-major value arrays:
/// a slot's lane group starts on a 64-byte boundary (for the common lane
/// batch), so the auto-vectorized inner loops issue aligned loads/stores.
template <typename T>
struct CacheAlignedAlloc {
  using value_type = T;
  CacheAlignedAlloc() = default;
  template <typename U>
  CacheAlignedAlloc(const CacheAlignedAlloc<U>&) {}
  T* allocate(size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{64}));
  }
  void deallocate(T* p, size_t) {
    ::operator delete(p, std::align_val_t{64});
  }
  template <typename U>
  bool operator==(const CacheAlignedAlloc<U>&) const {
    return true;
  }
};

/// Lane-major value storage: 64-byte aligned, contiguous.
using LaneVec = std::vector<int64_t, CacheAlignedAlloc<int64_t>>;

/// One lane's armed fault. Mirrors fault::FaultSite without depending on
/// src/fault (which sits above sim in the layer order); fault::run_campaign
/// converts sites to LaneFaults when it shards a campaign into lane-groups.
struct LaneFault {
  enum class Kind : uint8_t {
    kNone,       ///< lane runs fault-free
    kStuck0,     ///< combinational bit forced to 0 every eval
    kStuck1,     ///< combinational bit forced to 1 every eval
    kTransient,  ///< combinational bit inverted during one cycle's settle
    kSeuReg,     ///< one register bit flips once at `cycle`
    kSeuMem,     ///< one memory-word bit flips once at `cycle`
  };
  Kind kind = Kind::kNone;
  netlist::NodeId node = netlist::kInvalidNode;  ///< target (not kSeuMem)
  int mem = -1;        ///< memory id (kSeuMem)
  int addr = 0;        ///< word address (kSeuMem)
  int bit = 0;         ///< bit index within the target value
  uint64_t cycle = 0;  ///< injection cycle (SEU/transient)
};

class BatchSimulator {
 public:
  /// Compiles (or reuses) the design's ExecPlan and replicates state for
  /// `lanes` independent runs. `lanes` must be in [1, 64].
  BatchSimulator(const netlist::Design& design, int lanes);

  const netlist::Design& design() const { return design_; }
  int lanes() const { return lanes_; }
  /// Lanes still being simulated (lanes() minus retired ones).
  int active_lanes() const { return live_; }
  uint64_t cycle() const { return cycle_; }
  /// One lane's own cycle count: the sweep cycle minus the lane's start
  /// cycle. Equal to cycle() until the lane is refilled mid-sweep, after
  /// which the lane restarts from 0 — so a refilled lane's drivers, fault
  /// schedule, and timing all see the same cycle numbers a fresh scalar run
  /// would.
  uint64_t lane_cycle(int lane) const {
    return cycle_ - base_[static_cast<size_t>(lane)];
  }

  /// Engine::reset() for every lane: registers to init, memories/inputs to
  /// zero, cycle counter to 0, then each lane's cycle-0 SEU flip.
  void reset_all();

  /// Combinational settle of all lanes (idempotent for fixed inputs/state).
  void eval_all();

  /// Engine::step() for every lane in lockstep: settle, latch, advance the
  /// cycle counter, apply due SEU flips, settle again. Polls the armed
  /// deadline every 256 cycles like the scalar engines.
  void step_all();

  /// Drive one lane's Input node (canonicalized exactly like Engine::poke).
  void poke_input(int lane, netlist::NodeId id, int64_t value);

  /// One lane's value of any node after the most recent settle. The lane
  /// must not be retired.
  BitVec value(int lane, netlist::NodeId id) const;
  int64_t value_i64(int lane, netlist::NodeId id) const {
    return values_[static_cast<size_t>(id) * static_cast<size_t>(active_) +
                   static_cast<size_t>(phys_[static_cast<size_t>(lane)])];
  }

  /// Arms `fault` on one lane (replacing whatever was armed), healing any
  /// const slot the previous fault had rewritten. kNone disarms. The
  /// fault's cycle is interpreted on the lane's own clock (lane_cycle), so
  /// arming after a refill behaves exactly like arming before reset_all.
  void arm_lane_fault(int lane, const LaneFault& fault);
  void disarm_lane_fault(int lane) { arm_lane_fault(lane, LaneFault{}); }

  /// Restarts one live lane mid-sweep with a fresh trajectory: per-lane
  /// Engine::reset() (registers to init, memory/inputs to zero, consts
  /// rematerialized), the lane clock rebased to 0, `fault` armed on the
  /// new clock, and a lane-cycle-0 SEU fired on the reset state — the
  /// refilled lane's trajectory is bitwise-identical to a scalar run of
  /// the same fault from reset. Other lanes are unaffected. This is what
  /// lets a fault campaign stream fresh sites into lanes freed by early
  /// finishers instead of draining a whole group behind a hang straggler.
  void refill_lane(int lane, const LaneFault& fault);

  /// Removes a finished lane from the batch. Reading or poking a retired
  /// lane is invalid until the next reset_all(), which revives every lane.
  /// Remaining lanes' trajectories are unaffected. Physically, the lane's
  /// column is only *marked* dead; columns are compacted out of the
  /// lane-major arrays lazily, once at least half the storage is dead, so a
  /// batch retiring N lanes pays O(log N) compaction passes instead of N.
  /// This is what keeps a long-tail lane (e.g. a hang candidate running to
  /// its cycle budget) from dragging the whole group: as siblings finish
  /// and retire, the sweep shrinks toward scalar cost.
  void retire_lane(int lane);
  bool lane_retired(int lane) const {
    return retired_[static_cast<size_t>(lane)] != 0;
  }

  /// Wall-clock budget shared by all lanes; nullptr (default) disarms.
  void set_deadline(std::shared_ptr<const Deadline> deadline) {
    deadline_ = std::move(deadline);
  }

  /// Port-level view of one lane, compatible with every sim::Engine
  /// consumer in src/axis (drivers, monitors). Valid for the simulator's
  /// lifetime.
  PortAccess& lane(int l);

 private:
  /// One lane's port-level adapter.
  class LaneView final : public PortAccess {
   public:
    const netlist::Design& design() const override { return sim_->design(); }
    void poke(netlist::NodeId input, int64_t value) override {
      sim_->poke_input(lane_, input, value);
    }
    BitVec value(netlist::NodeId id) const override {
      return sim_->value(lane_, id);
    }
    uint64_t cycle() const override { return sim_->lane_cycle(lane_); }

   private:
    friend class BatchSimulator;
    BatchSimulator* sim_ = nullptr;
    int lane_ = 0;
  };

  /// One armed combinational transform, pre-resolved for the exec loop.
  struct CombEntry {
    int32_t slot = 0;  ///< target node / value slot
    int32_t lane = 0;
    LaneFault::Kind kind = LaneFault::Kind::kNone;
    int bit = 0;
    uint64_t cycle = 0;   ///< transient fire cycle
    uint8_t dsh = 63;     ///< 64 - width: canonicalization shift pair
    bool is_input = false;
    bool is_const = false;
    int64_t imm = 0;  ///< const rematerialization value (is_const only)
  };

  void eval_stream_injected();
  void apply_comb_entry(const CombEntry& e);
  void commit_all();
  void seu_flips();          ///< fire due SEU flips (cycle_ == fault.cycle)
  void restore_consts(int lane);
  void rebuild_comb_index();
  void flip_state_bit(int lane, const LaneFault& f);
  void compact_dead();       ///< drop every dead column from storage
  void revive_lanes();       ///< undo retirement: full-width arrays again

  const netlist::Design& design_;
  std::shared_ptr<const netlist::ExecPlan> plan_;
  /// ISA- and lane-count-specialized stream kernel, selected once at
  /// construction (see sim/batch_kernels.hpp for the dispatch story).
  void (*stream_kernel_)(const netlist::ExecInstr*, size_t, int64_t*,
                         int64_t*, std::vector<LaneVec>*, int) = nullptr;
  int lanes_ = 1;
  int active_ = 1;  ///< current storage stride (live + dead-uncompacted)
  int live_ = 1;    ///< lanes_ minus retired
  uint64_t cycle_ = 0;
  bool evaluated_ = false;
  std::shared_ptr<const Deadline> deadline_;

  // Lane-major storage: slot s, (logical) lane l at s * active_ + phys_[l].
  // Retirement compacts columns out, so the stride is active_, not lanes_.
  LaneVec values_;
  LaneVec state_;
  std::vector<LaneVec> mem_;  ///< word w, lane l at w*active_+phys_[l]

  /// Logical lane -> physical column; -1 once the column was compacted
  /// away. A retired lane keeps a valid (dead) column until the next
  /// compact_dead(). Identity after any reset_all().
  std::vector<int> phys_;
  std::vector<uint8_t> retired_;  ///< per logical lane
  /// Sweep cycle at which each lane's current trajectory started (0 after
  /// reset_all; the refill cycle after refill_lane). Armed fault cycles
  /// are stored rebased onto the sweep clock: faults_[l].cycle ==
  /// base_[l] + the lane-relative cycle the caller armed.
  std::vector<uint64_t> base_;

  std::vector<LaneFault> faults_;      ///< per logical lane; kNone = disarmed
  std::vector<uint8_t> seu_fired_;     ///< per logical lane: SEU applied
  std::vector<CombEntry> comb_entries_;      ///< armed comb faults, all lanes
  std::vector<uint8_t> comb_slot_flag_;      ///< per slot: any lane armed
  bool comb_armed_ = false;
  std::vector<LaneView> views_;
};

}  // namespace hlshc::sim
