// The unified simulation-engine interface.
//
// Every consumer of cycle-accurate simulation — the AXI-Stream testbench and
// protocol monitors (src/axis), the evaluation procedure (src/core), the
// fault campaigns (src/fault), VCD tracing and the bench drivers — programs
// against `sim::Engine`. Two implementations exist:
//
//   * sim::Simulator (simulator.hpp) — the legacy interpreter: a per-node
//     walk over the netlist graph in topological order. Simple, obviously
//     correct, and kept as the differential-testing oracle.
//   * sim::CompiledSimulator (compiled.hpp) — the compiled engine: executes
//     a levelized flat instruction stream (netlist::ExecPlan) over dense
//     word-packed value slots with zero per-cycle allocation. Several times
//     faster; the default for campaigns and benchmarks.
//
// The base class owns the two-phase cycle protocol (eval / commit / edge),
// the cycle counter and watchdog budget, port name resolution, and
// fault-injector arming, so both engines expose byte-identical semantics:
// the differential suite (tests/engine_diff_test.cpp) asserts identical
// outputs, cycle counts and fault classifications.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "base/bitvec.hpp"
#include "base/deadline.hpp"
#include "netlist/ir.hpp"

namespace hlshc::sim {

/// Structured watchdog outcome: a bounded simulation exceeded its cycle
/// budget. Thrown by Engine::step() when a cycle budget is armed and by
/// the AXI-Stream testbench when a run fails to complete — e.g. a fault
/// wedges a handshake and TVALID never asserts. Campaign drivers catch this
/// to classify the run as a hang instead of hanging themselves.
class SimTimeout : public Error {
 public:
  SimTimeout(const std::string& context, uint64_t cycles)
      : Error(context + " [SimTimeout after " + std::to_string(cycles) +
              " cycles]"),
        cycles_(cycles) {}

  uint64_t cycles() const { return cycles_; }

 private:
  uint64_t cycles_;
};

class Engine;

/// The minimal port-level view of one simulated run: poke inputs, peek node
/// values, read the cycle counter. The AXI-Stream drivers and protocol
/// monitors (src/axis) program against this interface instead of Engine, so
/// the same driver state machines serve a scalar Engine and each lane of a
/// sim::BatchSimulator — which is what makes lane-batched classifications
/// bitwise-identical to scalar runs by construction.
class PortAccess {
 public:
  virtual ~PortAccess() = default;

  virtual const netlist::Design& design() const = 0;

  /// Drive an Input node by id (resolve the port once, poke every cycle).
  virtual void poke(netlist::NodeId input, int64_t value) = 0;

  /// Value of any node after the most recent combinational settle.
  virtual BitVec value(netlist::NodeId id) const = 0;

  virtual uint64_t cycle() const = 0;
};

/// Per-node dynamic-activity counts, the repo's power/hotspot proxy.
/// Accumulated by the Engine base while activity profiling is enabled, from
/// value snapshots taken at every clock edge (the settled combinational
/// state about to be latched):
///
///   * toggles[n]     — bits of node n that changed between consecutive
///                      edges (popcount of the XOR, masked to the node
///                      width). CMOS dynamic power is proportional to
///                      exactly this switched capacitance, which is why the
///                      ranked toggle table doubles as a hotspot report.
///   * reg_writes[n]  — clock edges at which register n's enable held
///                      (an accepted latch, whether or not the value moved).
///   * mem_reads[m]   — edges at which some read port of memory m presented
///                      a different address than the previous edge.
///   * mem_writes[m]  — committed write transactions into memory m.
///
/// Both engines snapshot through the same canonical sign-extended int64
/// encoding, so every count is identical between interpreter and compiled
/// engine by construction — asserted by the differential suite.
struct ActivityProfile {
  uint64_t cycles = 0;               ///< edges accumulated
  std::vector<uint64_t> toggles;     ///< indexed by NodeId
  std::vector<uint64_t> reg_writes;  ///< indexed by NodeId; Reg nodes only
  std::vector<uint64_t> mem_reads;   ///< indexed by memory id
  std::vector<uint64_t> mem_writes;  ///< indexed by memory id
};

/// Non-invasive fault-injection hook consulted by the engine, so faults
/// can be armed on a built design without rebuilding it (src/fault provides
/// the concrete SEU / stuck-at / transient injectors).
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;

  /// Nodes whose combinational value transform() may rewrite (stuck-at and
  /// transient faults). Queried once when the injector is armed.
  virtual std::vector<netlist::NodeId> combinational_targets() const {
    return {};
  }

  /// Applied to each target's value as eval() computes it. Must be a pure
  /// function of (id, value, cycle) so eval() stays idempotent.
  virtual BitVec transform(netlist::NodeId id, const BitVec& value,
                           uint64_t cycle) {
    (void)id;
    (void)cycle;
    return value;
  }

  /// State hook: called once per simulated cycle (at reset for cycle 0 and
  /// after every clock edge, before combinational settle). May corrupt
  /// register or memory state via flip_reg_bit()/flip_mem_bit().
  virtual void at_cycle(Engine& engine) { (void)engine; }
};

class Engine : public PortAccess {
 public:
  ~Engine() override = default;

  const netlist::Design& design() const override { return design_; }

  /// "interpreter" or "compiled"; shows up in bench output and reports.
  virtual const char* kind_name() const = 0;

  /// Resets registers to their init values, memories to zero, inputs to
  /// zero, and the cycle counter.
  void reset();

  /// Combinational propagation. Idempotent for fixed inputs/state.
  void eval();

  /// eval() then clock edge; advances the cycle counter. Throws SimTimeout
  /// when an armed cycle budget is exhausted.
  void step();

  /// Runs `n` clock cycles with inputs held. `n` must be non-negative; the
  /// count is handled as uint64_t internally so multi-billion-cycle
  /// campaigns cannot overflow.
  void run(int64_t n);

  void set_input(std::string_view port, const BitVec& value);
  void set_input(std::string_view port, int64_t value);

  /// Fast-path input drive by node id (resolve the port once, poke every
  /// cycle). The id must name an Input node of the design.
  void poke(netlist::NodeId input, int64_t value) override;

  /// Value of any node after the most recent eval()/step().
  BitVec value(netlist::NodeId id) const override = 0;

  BitVec output(std::string_view port) const;
  int64_t output_i64(std::string_view port) const;

  uint64_t cycle() const override { return cycle_; }

  // ---- robustness hooks ----------------------------------------------------

  /// Watchdog: step() throws SimTimeout once `cycle() >= max_cycles`.
  /// 0 (the default) disarms the budget.
  void set_cycle_budget(uint64_t max_cycles) { cycle_budget_ = max_cycles; }
  uint64_t cycle_budget() const { return cycle_budget_; }

  /// Wall-clock budget, the service-layer generalization of the cycle
  /// watchdog: step() polls the shared token every 256 cycles and throws
  /// DeadlineExceeded once it expires, so a runaway request fails inside
  /// its budget instead of wedging a worker. nullptr (default) disarms.
  void set_deadline(std::shared_ptr<const Deadline> deadline) {
    deadline_ = std::move(deadline);
  }
  const std::shared_ptr<const Deadline>& deadline() const {
    return deadline_;
  }

  /// Arms (or, with nullptr, disarms) a fault injector. The injector must
  /// outlive its armed period; its combinational targets are validated here.
  void set_fault_injector(FaultInjector* injector);

  /// SEU pokes: flip one bit of a register's current state / one bit of one
  /// memory word. Validates the target and throws hlshc::Error on a bad one.
  void flip_reg_bit(netlist::NodeId reg, int bit);
  void flip_mem_bit(int mem_id, int addr, int bit);

  /// Test hooks for memory state.
  virtual BitVec mem_peek(int mem_id, int addr) const = 0;
  virtual void mem_poke(int mem_id, int addr, const BitVec& value) = 0;

  // ---- activity profiling --------------------------------------------------

  /// Enables per-node activity accounting (see ActivityProfile). Enabling
  /// zeroes all counts; disabling freezes them for inspection. Off by
  /// default — a disabled engine pays one predicted branch per step().
  void set_activity_enabled(bool on);
  bool activity_enabled() const { return activity_; }
  /// The accumulated counts. Valid whenever profiling is or was enabled.
  const ActivityProfile& activity() const { return profile_; }

 protected:
  explicit Engine(const netlist::Design& design);

  // Engine-specific phases behind the shared two-phase cycle protocol.
  virtual void eval_comb() = 0;
  virtual void commit_state() = 0;   ///< latch registers, commit mem writes
  virtual void reset_state() = 0;    ///< regs to init, mems/inputs to zero
  virtual void poke_input(netlist::NodeId id, int64_t value) = 0;
  virtual void do_flip_reg_bit(netlist::NodeId reg, int bit, int width) = 0;
  virtual void do_flip_mem_bit(int mem_id, int addr, int bit, int width) = 0;
  /// Called after inject_mask_ changed, so engines can rebuild any derived
  /// injection structures.
  virtual void on_injector_changed() {}

  /// Dump every node's current value, one canonical sign-extended int64 per
  /// node id, into `out` (node_count() entries). Both engines store values
  /// in BitVec's canonical form, so the activity accounting built on these
  /// snapshots is engine-independent.
  virtual void snapshot_values(int64_t* out) const = 0;

  const netlist::Design& design_;
  uint64_t cycle_ = 0;
  uint64_t cycle_budget_ = 0;  ///< 0 = unbounded
  std::shared_ptr<const Deadline> deadline_;  ///< nullptr = unbounded
  bool evaluated_ = false;
  FaultInjector* injector_ = nullptr;
  std::vector<uint8_t> inject_mask_;  ///< per-node: transform() applies

 private:
  void accumulate_activity();

  // Activity-profiling state (set_activity_enabled builds the watch lists).
  bool activity_ = false;
  ActivityProfile profile_;
  std::vector<int64_t> act_prev_, act_cur_;  ///< edge snapshots
  bool act_prev_valid_ = false;
  std::vector<uint64_t> act_mask_;  ///< per-node width mask
  struct RegWatch {
    int32_t reg;
    int32_t enable;  ///< node id, or -1 for always-enabled
  };
  struct MemWatch {
    int32_t node;  ///< enable node (writes) / address node (reads)
    int32_t mem;
  };
  std::vector<RegWatch> act_regs_;
  std::vector<MemWatch> act_mem_reads_;
  std::vector<MemWatch> act_mem_writes_;
};

enum class EngineKind : uint8_t {
  kInterpreter,  ///< sim::Simulator — the per-node graph walker (oracle)
  kCompiled,     ///< sim::CompiledSimulator — the ExecPlan instruction stream
};

const char* engine_kind_name(EngineKind kind);

/// Factory over both engines. The design must outlive the engine.
std::unique_ptr<Engine> make_engine(const netlist::Design& design,
                                    EngineKind kind = EngineKind::kCompiled);

}  // namespace hlshc::sim
