#include "sim/vcd.hpp"

#include <sstream>

#include "base/check.hpp"

namespace hlshc::sim {

namespace {

/// Short printable VCD identifier for signal k ("!", "\"", ..., "!!", ...).
std::string vcd_id(size_t k) {
  std::string id;
  do {
    id.push_back(static_cast<char>('!' + k % 94));
    k /= 94;
  } while (k > 0);
  return id;
}

}  // namespace

VcdTrace::VcdTrace(
    const Engine& sim,
    std::vector<std::pair<std::string, netlist::NodeId>> signals)
    : sim_(sim), signals_(std::move(signals)) {
  HLSHC_CHECK(!signals_.empty(), "VCD trace with no signals");
  for (size_t k = 0; k < signals_.size(); ++k) {
    ids_.push_back(vcd_id(k));
    last_.emplace_back();
    has_last_.push_back(false);
  }
}

VcdTrace VcdTrace::ports(const Engine& sim) {
  std::vector<std::pair<std::string, netlist::NodeId>> sigs;
  const netlist::Design& d = sim.design();
  for (netlist::NodeId id : d.inputs()) sigs.emplace_back(d.node(id).name, id);
  for (netlist::NodeId id : d.outputs())
    sigs.emplace_back(d.node(id).name, id);
  return VcdTrace(sim, std::move(sigs));
}

void VcdTrace::sample() {
  std::ostringstream os;
  bool any = false;
  for (size_t k = 0; k < signals_.size(); ++k) {
    const BitVec& v = sim_.value(signals_[k].second);
    if (has_last_[k] && v == last_[k]) continue;
    last_[k] = v;
    has_last_[k] = true;
    any = true;
    if (v.width() == 1) {
      os << (v.to_bool() ? '1' : '0') << ids_[k] << '\n';
    } else {
      os << 'b' << v.to_binary_string() << ' ' << ids_[k] << '\n';
    }
  }
  if (any) body_ += "#" + std::to_string(time_) + "\n" + os.str();
  ++time_;
}

std::string VcdTrace::finish() const {
  std::ostringstream os;
  os << "$timescale 1ns $end\n";
  os << "$scope module " << sim_.design().name() << " $end\n";
  for (size_t k = 0; k < signals_.size(); ++k) {
    const netlist::Node& n = sim_.design().node(signals_[k].second);
    os << "$var wire " << n.width << ' ' << ids_[k] << ' '
       << signals_[k].first << " $end\n";
  }
  os << "$upscope $end\n$enddefinitions $end\n";
  os << body_;
  os << '#' << time_ << '\n';
  return os.str();
}

}  // namespace hlshc::sim
