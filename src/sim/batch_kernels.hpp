// Internal interface between sim::BatchSimulator and its ISA-specialized
// lane kernels.
//
// The per-instruction lane loops are the whole cost of a batched sweep, and
// they only pay off when the compiler vectorizes them. The toolchain's
// default ISA (plain x86-64 = SSE2) packs two int64 lanes per vector; AVX2
// packs four; AVX-512 packs eight. Rather than bake a wider -march into the
// binary (and SIGILL on older hosts), the kernel translation unit is
// compiled per microarchitecture level the toolchain supports — baseline,
// x86-64-v3 (AVX2), x86-64-v4 (AVX-512) — and
// BatchSimulator picks the widest set the *running* CPU reports at
// construction time. Both copies are the same source (batch_kernels.inc),
// so they are bitwise-identical in results by construction: everything is
// two's-complement integer math, which vectorization cannot change.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "netlist/exec_plan.hpp"
#include "sim/batch.hpp"

namespace hlshc::sim {

/// Executes the whole per-cycle instruction stream across all lanes of the
/// lane-major value/state/memory arrays.
using StreamKernelFn = void (*)(const netlist::ExecInstr* instrs, size_t n,
                                int64_t* values, int64_t* state,
                                std::vector<LaneVec>* mem, int lanes);

/// Baseline kernels (the toolchain's default ISA). Always present.
StreamKernelFn select_stream_kernel_base(int lanes);

#if defined(HLSHC_BATCH_HAVE_V3)
/// x86-64-v3 kernels (AVX2/FMA/BMI2). Only call when the CPU has them.
StreamKernelFn select_stream_kernel_v3(int lanes);
#endif

#if defined(HLSHC_BATCH_HAVE_V4)
/// x86-64-v4 kernels (AVX-512). Only call when the CPU has them.
StreamKernelFn select_stream_kernel_v4(int lanes);
#endif

/// Runtime ISA dispatch: the widest kernel set this CPU supports, for the
/// given lane count (fixed-trip 4/8/16 specializations, generic otherwise).
StreamKernelFn select_stream_kernel(int lanes);

/// Single-instruction executor (baseline ISA, runtime lane count) for the
/// fault-injected slow path, which interleaves per-slot transforms with the
/// stream and so cannot use the one-shot stream kernel.
void exec_instr_lanes(const netlist::ExecInstr& in, int64_t* values,
                      int64_t* state, std::vector<LaneVec>* mem, int lanes);

}  // namespace hlshc::sim
