#include "sim/engine.hpp"

#include <algorithm>
#include <bit>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/compiled.hpp"
#include "sim/simulator.hpp"

namespace hlshc::sim {

using netlist::kInvalidNode;
using netlist::Node;
using netlist::NodeId;
using netlist::Op;

Engine::Engine(const netlist::Design& design) : design_(design) {
  design_.validate();
  inject_mask_.assign(design_.node_count(), 0);
}

void Engine::reset() {
  reset_state();
  cycle_ = 0;
  evaluated_ = false;
  act_prev_valid_ = false;  // no toggle accounting across a reset
  if (injector_) injector_->at_cycle(*this);
}

void Engine::eval() {
  if (obs::enabled()) {
    obs::ScopedTimer t(obs::registry().timer("sim.eval"));
    eval_comb();
  } else {
    eval_comb();
  }
  evaluated_ = true;
}

void Engine::step() {
  if (cycle_budget_ && cycle_ >= cycle_budget_)
    throw SimTimeout("cycle budget exhausted in design '" + design_.name() +
                         '\'',
                     cycle_);
  // Deadline poll every 256 cycles: one clock read per poll, one pointer
  // test per step when disarmed — cheap enough for multi-million-cycle runs
  // while keeping any simulation interruptible within its wall budget.
  if (deadline_ && (cycle_ & 0xFF) == 0 && deadline_->expired())
    deadline_->check("simulation of design '" + design_.name() + '\'');
  if (!evaluated_) eval();
  // Sample the settled pre-edge state — these are the values being latched,
  // so toggle/write accounting sees exactly what the clock edge sees.
  if (activity_) accumulate_activity();
  if (obs::enabled()) {
    obs::ScopedTimer t(obs::registry().timer("sim.commit"));
    commit_state();
  } else {
    commit_state();
  }
  ++cycle_;
  if (injector_) injector_->at_cycle(*this);
  evaluated_ = false;
  eval();
}

void Engine::run(int64_t n) {
  HLSHC_CHECK(n >= 0, "negative cycle count " << n);
  obs::Span span("engine.run", "sim");
  span.arg("design", design_.name())
      .arg("engine", kind_name())
      .arg("cycles", n);
  for (uint64_t i = 0; i < static_cast<uint64_t>(n); ++i) step();
}

void Engine::set_activity_enabled(bool on) {
  activity_ = on;
  if (!on) return;
  const size_t n = design_.node_count();
  profile_ = ActivityProfile{};
  profile_.toggles.assign(n, 0);
  profile_.reg_writes.assign(n, 0);
  profile_.mem_reads.assign(design_.memories().size(), 0);
  profile_.mem_writes.assign(design_.memories().size(), 0);
  act_prev_.assign(n, 0);
  act_cur_.assign(n, 0);
  act_prev_valid_ = false;
  act_mask_.assign(n, 0);
  act_regs_.clear();
  act_mem_reads_.clear();
  act_mem_writes_.clear();
  for (size_t i = 0; i < n; ++i) {
    const Node& nd = design_.node(static_cast<NodeId>(i));
    act_mask_[i] = nd.width >= 64 ? ~uint64_t{0}
                                  : (uint64_t{1} << nd.width) - 1;
    switch (nd.op) {
      case Op::Reg:
        act_regs_.push_back({static_cast<int32_t>(i),
                             nd.operands.size() < 2 ? -1 : nd.operands[1]});
        break;
      case Op::MemRead:
        act_mem_reads_.push_back({nd.operands[0], nd.mem});
        break;
      case Op::MemWrite:
        act_mem_writes_.push_back({nd.operands[2], nd.mem});
        break;
      default: break;
    }
  }
}

void Engine::accumulate_activity() {
  snapshot_values(act_cur_.data());
  const size_t n = design_.node_count();
  if (act_prev_valid_) {
    for (size_t i = 0; i < n; ++i) {
      uint64_t diff = (static_cast<uint64_t>(act_cur_[i]) ^
                       static_cast<uint64_t>(act_prev_[i])) &
                      act_mask_[i];
      profile_.toggles[i] += static_cast<uint64_t>(std::popcount(diff));
    }
    // A read port is "active" when it presents a new address.
    for (const MemWatch& r : act_mem_reads_)
      if (act_cur_[r.node] != act_prev_[r.node])
        ++profile_.mem_reads[static_cast<size_t>(r.mem)];
  }
  for (const RegWatch& rw : act_regs_)
    if (rw.enable < 0 || act_cur_[rw.enable] != 0)
      ++profile_.reg_writes[static_cast<size_t>(rw.reg)];
  for (const MemWatch& w : act_mem_writes_)
    if (act_cur_[w.node] != 0)
      ++profile_.mem_writes[static_cast<size_t>(w.mem)];
  ++profile_.cycles;
  std::swap(act_prev_, act_cur_);
  act_prev_valid_ = true;
}

void Engine::set_input(std::string_view port, const BitVec& value) {
  NodeId id = design_.find_input(port);
  HLSHC_CHECK(id != kInvalidNode, "no input port '" << port << "' in design '"
                                                    << design_.name() << '\'');
  poke_input(id, value.to_int64());
  evaluated_ = false;
}

void Engine::set_input(std::string_view port, int64_t value) {
  NodeId id = design_.find_input(port);
  HLSHC_CHECK(id != kInvalidNode, "no input port '" << port << "' in design '"
                                                    << design_.name() << '\'');
  poke_input(id, value);
  evaluated_ = false;
}

void Engine::poke(NodeId input, int64_t value) {
  const Node& n = design_.node(input);
  HLSHC_CHECK(n.op == Op::Input,
              "poke: node " << input << " (" << netlist::op_name(n.op)
                            << ") is not an input");
  poke_input(input, value);
  evaluated_ = false;
}

BitVec Engine::output(std::string_view port) const {
  NodeId id = design_.find_output(port);
  HLSHC_CHECK(id != kInvalidNode, "no output port '" << port
                                                     << "' in design '"
                                                     << design_.name() << '\'');
  return value(id);
}

int64_t Engine::output_i64(std::string_view port) const {
  return output(port).to_int64();
}

void Engine::set_fault_injector(FaultInjector* injector) {
  std::vector<NodeId> targets;
  if (injector) {
    targets = injector->combinational_targets();
    for (NodeId id : targets) design_.node(id);  // validates the id
  }
  // Commit only after every target validated, so a rejected injector is
  // never left armed.
  std::fill(inject_mask_.begin(), inject_mask_.end(), 0);
  injector_ = injector;
  for (NodeId id : targets) inject_mask_[static_cast<size_t>(id)] = 1;
  on_injector_changed();
}

void Engine::flip_reg_bit(NodeId reg, int bit) {
  const Node& n = design_.node(reg);
  HLSHC_CHECK(n.op == Op::Reg,
              "flip_reg_bit: node " << reg << " (" << netlist::op_name(n.op)
                                    << ") is not a register");
  HLSHC_CHECK(bit >= 0 && bit < n.width,
              "flip_reg_bit: bit " << bit << " out of width " << n.width);
  do_flip_reg_bit(reg, bit, n.width);
  evaluated_ = false;
}

void Engine::flip_mem_bit(int mem_id, int addr, int bit) {
  HLSHC_CHECK(mem_id >= 0 && static_cast<size_t>(mem_id) <
                                 design_.memories().size(),
              "flip_mem_bit: no memory " << mem_id << " in design '"
                                         << design_.name() << '\'');
  const netlist::Memory& m = design_.memories()[static_cast<size_t>(mem_id)];
  HLSHC_CHECK(addr >= 0 && addr < m.depth,
              "flip_mem_bit: address " << addr << " out of depth " << m.depth);
  HLSHC_CHECK(bit >= 0 && bit < m.width,
              "flip_mem_bit: bit " << bit << " out of width " << m.width);
  do_flip_mem_bit(mem_id, addr, bit, m.width);
  evaluated_ = false;
}

const char* engine_kind_name(EngineKind kind) {
  switch (kind) {
    case EngineKind::kInterpreter: return "interpreter";
    case EngineKind::kCompiled: return "compiled";
  }
  return "?";
}

std::unique_ptr<Engine> make_engine(const netlist::Design& design,
                                    EngineKind kind) {
  switch (kind) {
    case EngineKind::kInterpreter: return std::make_unique<Simulator>(design);
    case EngineKind::kCompiled:
      return std::make_unique<CompiledSimulator>(design);
  }
  HLSHC_UNREACHABLE("bad EngineKind");
}

}  // namespace hlshc::sim
