#include "sim/engine.hpp"

#include <algorithm>

#include "sim/compiled.hpp"
#include "sim/simulator.hpp"

namespace hlshc::sim {

using netlist::kInvalidNode;
using netlist::Node;
using netlist::NodeId;
using netlist::Op;

Engine::Engine(const netlist::Design& design) : design_(design) {
  design_.validate();
  inject_mask_.assign(design_.node_count(), 0);
}

void Engine::reset() {
  reset_state();
  cycle_ = 0;
  evaluated_ = false;
  if (injector_) injector_->at_cycle(*this);
}

void Engine::eval() {
  eval_comb();
  evaluated_ = true;
}

void Engine::step() {
  if (cycle_budget_ && cycle_ >= cycle_budget_)
    throw SimTimeout("cycle budget exhausted in design '" + design_.name() +
                         '\'',
                     cycle_);
  if (!evaluated_) eval();
  commit_state();
  ++cycle_;
  if (injector_) injector_->at_cycle(*this);
  evaluated_ = false;
  eval();
}

void Engine::run(int64_t n) {
  HLSHC_CHECK(n >= 0, "negative cycle count " << n);
  for (uint64_t i = 0; i < static_cast<uint64_t>(n); ++i) step();
}

void Engine::set_input(std::string_view port, const BitVec& value) {
  NodeId id = design_.find_input(port);
  HLSHC_CHECK(id != kInvalidNode, "no input port '" << port << "' in design '"
                                                    << design_.name() << '\'');
  poke_input(id, value.to_int64());
  evaluated_ = false;
}

void Engine::set_input(std::string_view port, int64_t value) {
  NodeId id = design_.find_input(port);
  HLSHC_CHECK(id != kInvalidNode, "no input port '" << port << "' in design '"
                                                    << design_.name() << '\'');
  poke_input(id, value);
  evaluated_ = false;
}

void Engine::poke(NodeId input, int64_t value) {
  const Node& n = design_.node(input);
  HLSHC_CHECK(n.op == Op::Input,
              "poke: node " << input << " (" << netlist::op_name(n.op)
                            << ") is not an input");
  poke_input(input, value);
  evaluated_ = false;
}

BitVec Engine::output(std::string_view port) const {
  NodeId id = design_.find_output(port);
  HLSHC_CHECK(id != kInvalidNode, "no output port '" << port
                                                     << "' in design '"
                                                     << design_.name() << '\'');
  return value(id);
}

int64_t Engine::output_i64(std::string_view port) const {
  return output(port).to_int64();
}

void Engine::set_fault_injector(FaultInjector* injector) {
  std::vector<NodeId> targets;
  if (injector) {
    targets = injector->combinational_targets();
    for (NodeId id : targets) design_.node(id);  // validates the id
  }
  // Commit only after every target validated, so a rejected injector is
  // never left armed.
  std::fill(inject_mask_.begin(), inject_mask_.end(), 0);
  injector_ = injector;
  for (NodeId id : targets) inject_mask_[static_cast<size_t>(id)] = 1;
  on_injector_changed();
}

void Engine::flip_reg_bit(NodeId reg, int bit) {
  const Node& n = design_.node(reg);
  HLSHC_CHECK(n.op == Op::Reg,
              "flip_reg_bit: node " << reg << " (" << netlist::op_name(n.op)
                                    << ") is not a register");
  HLSHC_CHECK(bit >= 0 && bit < n.width,
              "flip_reg_bit: bit " << bit << " out of width " << n.width);
  do_flip_reg_bit(reg, bit, n.width);
  evaluated_ = false;
}

void Engine::flip_mem_bit(int mem_id, int addr, int bit) {
  HLSHC_CHECK(mem_id >= 0 && static_cast<size_t>(mem_id) <
                                 design_.memories().size(),
              "flip_mem_bit: no memory " << mem_id << " in design '"
                                         << design_.name() << '\'');
  const netlist::Memory& m = design_.memories()[static_cast<size_t>(mem_id)];
  HLSHC_CHECK(addr >= 0 && addr < m.depth,
              "flip_mem_bit: address " << addr << " out of depth " << m.depth);
  HLSHC_CHECK(bit >= 0 && bit < m.width,
              "flip_mem_bit: bit " << bit << " out of width " << m.width);
  do_flip_mem_bit(mem_id, addr, bit, m.width);
  evaluated_ = false;
}

const char* engine_kind_name(EngineKind kind) {
  switch (kind) {
    case EngineKind::kInterpreter: return "interpreter";
    case EngineKind::kCompiled: return "compiled";
  }
  return "?";
}

std::unique_ptr<Engine> make_engine(const netlist::Design& design,
                                    EngineKind kind) {
  switch (kind) {
    case EngineKind::kInterpreter: return std::make_unique<Simulator>(design);
    case EngineKind::kCompiled:
      return std::make_unique<CompiledSimulator>(design);
  }
  HLSHC_UNREACHABLE("bad EngineKind");
}

}  // namespace hlshc::sim
