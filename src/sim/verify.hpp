// Differential design verification for the compile pipeline.
//
// diff_designs() drives two designs with identical random stimulus and
// compares every output every cycle, on both the interpreter and the
// compiled engine — the oracle the PassManager's verify-after-each-pass mode
// uses to catch a miscompiling pass the moment it runs. It lives in sim (not
// netlist) so the pass layer stays simulator-free; make_pass_verifier()
// adapts it to the netlist::PassVerifier hook.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "netlist/pass_manager.hpp"

namespace hlshc::sim {

struct VerifyOptions {
  int cycles = 24;            ///< clocked steps per engine
  uint64_t seed = 2026;       ///< stimulus generator seed
};

/// Simulates `before` and `after` in lockstep on random stimulus (full-width
/// values, both engines) and returns a description of the first divergence —
/// mismatched ports, or an output differing on some cycle — or std::nullopt
/// when the designs are indistinguishable on this stimulus.
std::optional<std::string> diff_designs(const netlist::Design& before,
                                        const netlist::Design& after,
                                        const VerifyOptions& options = {});

/// Wraps diff_designs() as the PassManager verification hook.
netlist::PassVerifier make_pass_verifier(const VerifyOptions& options = {});

}  // namespace hlshc::sim
