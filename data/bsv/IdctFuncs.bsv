// Shared Chen-Wang transform functions (32-bit, as the C reference).
package IdctFuncs;

import Vector::*;

typedef Int#(12) Coeff;
typedef Int#(9)  Sample;
typedef Int#(32) Word;

Word w1 = 2841; Word w2 = 2676; Word w3 = 2408;
Word w5 = 1609; Word w6 = 1108; Word w7 = 565;

function Vector#(8, Word) idctRow(Vector#(8, Word) blk);
   Word x1 = blk[4] << 11;
   Word x2 = blk[6]; Word x3 = blk[2]; Word x4 = blk[1];
   Word x5 = blk[7]; Word x6 = blk[5]; Word x7 = blk[3];
   Word x0 = (blk[0] << 11) + 128;

   Word a  = w7 * (x4 + x5);
   Word r4 = a + (w1 - w7) * x4;
   Word r5 = a - (w1 + w7) * x5;
   Word b  = w3 * (x6 + x7);
   Word r6 = b - (w3 - w5) * x6;
   Word r7 = b - (w3 + w5) * x7;

   Word x8 = x0 + x1;
   Word y0 = x0 - x1;
   Word c  = w6 * (x3 + x2);
   Word y2 = c - (w2 + w6) * x2;
   Word y3 = c + (w2 - w6) * x3;
   Word y1 = r4 + r6;
   Word y4 = r4 - r6;
   Word y6 = r5 + r7;
   Word y5 = r5 - r7;

   Word z7 = x8 + y3;
   Word z8 = x8 - y3;
   Word z3 = y0 + y2;
   Word z0 = y0 - y2;
   Word z2 = (181 * (y4 + y5) + 128) >> 8;
   Word z4 = (181 * (y4 - y5) + 128) >> 8;

   Vector#(8, Word) o = newVector;
   o[0] = (z7 + y1) >> 8; o[1] = (z3 + z2) >> 8;
   o[2] = (z0 + z4) >> 8; o[3] = (z8 + y6) >> 8;
   o[4] = (z8 - y6) >> 8; o[5] = (z0 - z4) >> 8;
   o[6] = (z3 - z2) >> 8; o[7] = (z7 - y1) >> 8;
   return o;
endfunction

function Sample iclip(Word v);
   return v < -256 ? -256 : (v > 255 ? 255 : truncate(v));
endfunction

function Vector#(8, Sample) idctCol(Vector#(8, Word) blk);
   Word x1 = blk[4] << 8;
   Word x2 = blk[6]; Word x3 = blk[2]; Word x4 = blk[1];
   Word x5 = blk[7]; Word x6 = blk[5]; Word x7 = blk[3];
   Word x0 = (blk[0] << 8) + 8192;

   Word a  = w7 * (x4 + x5) + 4;
   Word r4 = (a + (w1 - w7) * x4) >> 3;
   Word r5 = (a - (w1 + w7) * x5) >> 3;
   Word b  = w3 * (x6 + x7) + 4;
   Word r6 = (b - (w3 - w5) * x6) >> 3;
   Word r7 = (b - (w3 + w5) * x7) >> 3;

   Word x8 = x0 + x1;
   Word y0 = x0 - x1;
   Word c  = w6 * (x3 + x2) + 4;
   Word y2 = (c - (w2 + w6) * x2) >> 3;
   Word y3 = (c + (w2 - w6) * x3) >> 3;
   Word y1 = r4 + r6;
   Word y4 = r4 - r6;
   Word y6 = r5 + r7;
   Word y5 = r5 - r7;

   Word z7 = x8 + y3;
   Word z8 = x8 - y3;
   Word z3 = y0 + y2;
   Word z0 = y0 - y2;
   Word z2 = (181 * (y4 + y5) + 128) >> 8;
   Word z4 = (181 * (y4 - y5) + 128) >> 8;

   Vector#(8, Sample) o = newVector;
   o[0] = iclip((z7 + y1) >> 14); o[1] = iclip((z3 + z2) >> 14);
   o[2] = iclip((z0 + z4) >> 14); o[3] = iclip((z8 + y6) >> 14);
   o[4] = iclip((z8 - y6) >> 14); o[5] = iclip((z0 - z4) >> 14);
   o[6] = iclip((z3 - z2) >> 14); o[7] = iclip((z7 - y1) >> 14);
   return o;
endfunction

endpackage
