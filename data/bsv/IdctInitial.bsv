// 8x8 IDCT, initial BSV design: a direct translation of the reference C
// program into rules. One rule collects rows, one rule applies all eight
// row passes, one applies all eight column passes, one emits. The phase
// token handoffs between rules cost the extra periodicity the paper notes.
package IdctInitial;

import Vector::*;
import GetPut::*;

import IdctFuncs::*;

typedef enum { PhIn, PhRows, PhCols } Phase deriving (Bits, Eq);

interface IdctAxis;
   interface Put#(Tuple2#(Vector#(8, Coeff), Bool)) inRow;
   interface Get#(Tuple2#(Vector#(8, Sample), Bool)) outRow;
endinterface

module mkIdctInitial (IdctAxis);
   Reg#(Phase)    phase     <- mkReg(PhIn);
   Reg#(UInt#(3)) inCnt     <- mkReg(0);
   Reg#(Bool)     outActive <- mkReg(False);
   Reg#(UInt#(3)) outCnt    <- mkReg(0);
   Reg#(Vector#(8, Vector#(8, Coeff)))  inRegs  <- mkRegU;
   Reg#(Vector#(8, Vector#(8, Word)))   rowRegs <- mkRegU;
   Reg#(Vector#(8, Vector#(8, Sample))) outRegs <- mkRegU;

   rule doRows (phase == PhRows);
      Vector#(8, Vector#(8, Word)) r = newVector;
      for (Integer i = 0; i < 8; i = i + 1)
         r[i] = idctRow(map(signExtend, inRegs[i]));
      rowRegs <= r;
      phase <= PhCols;
   endrule

   rule doCols (phase == PhCols && !outActive);
      Vector#(8, Vector#(8, Sample)) o = newVector;
      for (Integer c = 0; c < 8; c = c + 1) begin
         Vector#(8, Word) column = newVector;
         for (Integer r = 0; r < 8; r = r + 1)
            column[r] = rowRegs[r][c];
         let res = idctCol(column);
         for (Integer r = 0; r < 8; r = r + 1)
            o[r][c] = res[r];
      end
      outRegs <= o;
      outActive <= True;
      outCnt <= 0;
      phase <= PhIn;
   endrule

   interface Put inRow;
      method Action put(Tuple2#(Vector#(8, Coeff), Bool) beat)
                    if (phase == PhIn);
         inRegs[inCnt] <= tpl_1(beat);
         inCnt <= inCnt + 1;
         if (inCnt == 7) phase <= PhRows;
      endmethod
   endinterface

   interface Get outRow;
      method ActionValue#(Tuple2#(Vector#(8, Sample), Bool)) get()
                          if (outActive);
         outCnt <= outCnt + 1;
         if (outCnt == 7) outActive <= False;
         return tuple2(outRegs[outCnt], outCnt == 7);
      endmethod
   endinterface
endmodule

endpackage
