// 8x8 IDCT, optimized BSV design: one row pass on the incoming beat with
// ping-pong row buffers, a column engine split into step/finish rules and
// a serializer. col_finish and emit both write the out-bank occupancy
// vector, so BSC serializes them — the once-per-matrix scheduling bubble
// the paper measures as periodicity 9.
package IdctOpt;

import Vector::*;
import GetPut::*;
import IdctInitial::*;
import IdctFuncs::*;

(* conflict_free = "collect, col_finish" *)
(* conflict_free = "col_step, col_finish" *)
module mkIdctOpt (IdctAxis);
   Reg#(UInt#(3))          inCnt   <- mkReg(0);
   Reg#(Bit#(1))           inBuf   <- mkReg(0);
   Reg#(Vector#(2, Bool))  rowFull <- mkReg(replicate(False));
   Reg#(UInt#(3))          colCnt  <- mkReg(0);
   Reg#(Bit#(1))           colR    <- mkReg(0);
   Reg#(Bit#(1))           colW    <- mkReg(0);
   Reg#(Vector#(2, Bool))  outFull <- mkReg(replicate(False));
   Reg#(UInt#(3))          outCnt  <- mkReg(0);
   Reg#(Bit#(1))           outR    <- mkReg(0);
   Reg#(Vector#(2, Vector#(8, Vector#(8, Int#(20)))))  rowBuf <- mkRegU;
   Reg#(Vector#(2, Vector#(8, Vector#(8, Sample))))    outBuf <- mkRegU;

   Bool colGuard = rowFull[colR] && !outFull[colW];

   function Action writeColumn(UInt#(3) c);
      action
         Vector#(8, Word) column = newVector;
         for (Integer r = 0; r < 8; r = r + 1)
            column[r] = signExtend(rowBuf[colR][r][c]);
         let res = idctCol(column);
         for (Integer r = 0; r < 8; r = r + 1)
            outBuf[colW][r][c] <= res[r];
      endaction
   endfunction

   rule col_step (colGuard && colCnt != 7);
      writeColumn(colCnt);
      colCnt <= colCnt + 1;
   endrule

   rule col_finish (colGuard && colCnt == 7);
      writeColumn(7);
      colCnt <= 0;
      rowFull[colR] <= False;
      outFull[colW] <= True;   // shares outFull with emit: the bubble
      colR <= ~colR;
      colW <= ~colW;
   endrule

   interface Put inRow;
      method Action put(Tuple2#(Vector#(8, Coeff), Bool) beat)
                    if (!rowFull[inBuf]);
         let res = idctRow(map(signExtend, tpl_1(beat)));
         for (Integer c = 0; c < 8; c = c + 1)
            rowBuf[inBuf][inCnt][c] <= truncate(res[c]);
         inCnt <= inCnt + 1;
         if (inCnt == 7) begin
            rowFull[inBuf] <= True;
            inBuf <= ~inBuf;
         end
      endmethod
   endinterface

   interface Get outRow;
      method ActionValue#(Tuple2#(Vector#(8, Sample), Bool)) get()
                          if (outFull[outR]);
         outCnt <= outCnt + 1;
         if (outCnt == 7) begin
            outFull[outR] <= False;
            outR <= ~outR;
         end
         return tuple2(outBuf[outR][outCnt], outCnt == 7);
      endmethod
   endinterface
endmodule

endpackage
