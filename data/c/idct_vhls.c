/* 8x8 inverse discrete cosine transform.
 *
 * Based on the ISO/IEC 13818-4:2004 conformance decoder (mpeg2decode,
 * idct.c), adapted for high-level synthesis exactly as the paper
 * describes:
 *   - the rounding in idctcol is implemented as a function (iclip), not a
 *     pre-filled clipping array;
 *   - explicit array indexing replaces pointer arithmetic;
 *   - the software-only zero-AC shortcut is dropped (hardware evaluates
 *     the straight-line butterfly; the results are bit-identical).
 */

#define W1 2841 /* 2048*sqrt(2)*cos(1*pi/16) */
#define W2 2676 /* 2048*sqrt(2)*cos(2*pi/16) */
#define W3 2408 /* 2048*sqrt(2)*cos(3*pi/16) */
#define W5 1609 /* 2048*sqrt(2)*cos(5*pi/16) */
#define W6 1108 /* 2048*sqrt(2)*cos(6*pi/16) */
#define W7 565  /* 2048*sqrt(2)*cos(7*pi/16) */

static int iclip(int x) {
  return x < -256 ? -256 : (x > 255 ? 255 : x);
}

/* row (horizontal) IDCT, operating on block[off .. off+7] */
static void idctrow(short blk[64], int off) {
  int x0;
  int x1;
  int x2;
  int x3;
  int x4;
  int x5;
  int x6;
  int x7;
  int x8;

  x1 = blk[off + 4] << 11;
  x2 = blk[off + 6];
  x3 = blk[off + 2];
  x4 = blk[off + 1];
  x5 = blk[off + 7];
  x6 = blk[off + 5];
  x7 = blk[off + 3];
  x0 = (blk[off + 0] << 11) + 128; /* for proper rounding in fourth stage */

  /* first stage */
  x8 = W7 * (x4 + x5);
  x4 = x8 + (W1 - W7) * x4;
  x5 = x8 - (W1 + W7) * x5;
  x8 = W3 * (x6 + x7);
  x6 = x8 - (W3 - W5) * x6;
  x7 = x8 - (W3 + W5) * x7;

  /* second stage */
  x8 = x0 + x1;
  x0 = x0 - x1;
  x1 = W6 * (x3 + x2);
  x2 = x1 - (W2 + W6) * x2;
  x3 = x1 + (W2 - W6) * x3;
  x1 = x4 + x6;
  x4 = x4 - x6;
  x6 = x5 + x7;
  x5 = x5 - x7;

  /* third stage */
  x7 = x8 + x3;
  x8 = x8 - x3;
  x3 = x0 + x2;
  x0 = x0 - x2;
  x2 = (181 * (x4 + x5) + 128) >> 8;
  x4 = (181 * (x4 - x5) + 128) >> 8;

  /* fourth stage */
  blk[off + 0] = (short)((x7 + x1) >> 8);
  blk[off + 1] = (short)((x3 + x2) >> 8);
  blk[off + 2] = (short)((x0 + x4) >> 8);
  blk[off + 3] = (short)((x8 + x6) >> 8);
  blk[off + 4] = (short)((x8 - x6) >> 8);
  blk[off + 5] = (short)((x0 - x4) >> 8);
  blk[off + 6] = (short)((x3 - x2) >> 8);
  blk[off + 7] = (short)((x7 - x1) >> 8);
}

/* column (vertical) IDCT, operating on block[off], block[off+8], ... */
static void idctcol(short blk[64], int off) {
  int x0;
  int x1;
  int x2;
  int x3;
  int x4;
  int x5;
  int x6;
  int x7;
  int x8;

  x1 = blk[off + 8 * 4] << 8;
  x2 = blk[off + 8 * 6];
  x3 = blk[off + 8 * 2];
  x4 = blk[off + 8 * 1];
  x5 = blk[off + 8 * 7];
  x6 = blk[off + 8 * 5];
  x7 = blk[off + 8 * 3];
  x0 = (blk[off + 0] << 8) + 8192;

  /* first stage */
  x8 = W7 * (x4 + x5) + 4;
  x4 = (x8 + (W1 - W7) * x4) >> 3;
  x5 = (x8 - (W1 + W7) * x5) >> 3;
  x8 = W3 * (x6 + x7) + 4;
  x6 = (x8 - (W3 - W5) * x6) >> 3;
  x7 = (x8 - (W3 + W5) * x7) >> 3;

  /* second stage */
  x8 = x0 + x1;
  x0 = x0 - x1;
  x1 = W6 * (x3 + x2) + 4;
  x2 = (x1 - (W2 + W6) * x2) >> 3;
  x3 = (x1 + (W2 - W6) * x3) >> 3;
  x1 = x4 + x6;
  x4 = x4 - x6;
  x6 = x5 + x7;
  x5 = x5 - x7;

  /* third stage */
  x7 = x8 + x3;
  x8 = x8 - x3;
  x3 = x0 + x2;
  x0 = x0 - x2;
  x2 = (181 * (x4 + x5) + 128) >> 8;
  x4 = (181 * (x4 - x5) + 128) >> 8;

  /* fourth stage */
  blk[off + 8 * 0] = (short)iclip((x7 + x1) >> 14);
  blk[off + 8 * 1] = (short)iclip((x3 + x2) >> 14);
  blk[off + 8 * 2] = (short)iclip((x0 + x4) >> 14);
  blk[off + 8 * 3] = (short)iclip((x8 + x6) >> 14);
  blk[off + 8 * 4] = (short)iclip((x8 - x6) >> 14);
  blk[off + 8 * 5] = (short)iclip((x0 - x4) >> 14);
  blk[off + 8 * 6] = (short)iclip((x3 - x2) >> 14);
  blk[off + 8 * 7] = (short)iclip((x7 - x1) >> 14);
}

/* two dimensional inverse discrete cosine transform */
void idct(short block[64]) {
  int i;
  for (i = 0; i < 8; i = i + 1) {
    idctrow(block, 8 * i);
  }
  for (i = 0; i < 8; i = i + 1) {
    idctcol(block, i);
  }
}

/* Vivado HLS top with a stream interface (push-button configuration:
 * no pragmas except the interface; idctrow/idctcol stay separate
 * modules with generated AXI-Stream links between them). */
void idct_axis(short block[64]) {
#pragma HLS INTERFACE axis port = block
  idct(block);
}
