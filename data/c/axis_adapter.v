// Hand-written AXI-Stream adapter for the Bambu-generated IDCT accelerator
// (Bambu cannot generate stream interfaces). Strictly sequential: fill the
// accelerator's block RAM one element per cycle, pulse start, wait for
// done, then read the matrix back out row by row.

module bambu_idct_axis (
  input              clk,
  input              rst,
  input  [95:0]      s_tdata,
  input              s_tvalid,
  input              s_tlast,
  output             s_tready,
  output [71:0]      m_tdata,
  output             m_tvalid,
  output             m_tlast,
  input              m_tready
);
  localparam PH_LOAD = 2'd0, PH_RUN = 2'd1, PH_READ = 2'd2, PH_EMIT = 2'd3;

  reg [1:0]  phase;
  reg        have;
  reg [5:0]  widx;
  reg        start_pending;
  reg [2:0]  relem;
  reg [2:0]  orow;
  reg signed [11:0] staging [0:7];
  reg signed [8:0]  ostg    [0:7];

  wire        done;
  wire [15:0] ext_rdata;
  wire [2:0]  wlane = widx[2:0];
  wire        drain = (phase == PH_LOAD) & have;
  wire        load_done = drain & (widx == 6'd63);

  idct_accel u_accel (
    .clk(clk),
    .start(start_pending),
    .done(done),
    .ext_we(drain),
    .ext_waddr(widx),
    .ext_wdata({{4{staging[wlane][11]}}, staging[wlane]}),
    .ext_raddr({orow, relem}),
    .ext_rdata(ext_rdata)
  );

  assign s_tready = (phase == PH_LOAD) & ~have;
  wire in_fire    = s_tvalid & s_tready;
  assign m_tvalid = (phase == PH_EMIT);
  assign m_tlast  = (orow == 3'd7);
  wire out_fire   = m_tvalid & m_tready;

  integer k;
  always @(posedge clk) begin
    if (rst) begin
      phase <= PH_LOAD; have <= 0; widx <= 0; start_pending <= 0;
      relem <= 0; orow <= 0;
    end else begin
      start_pending <= load_done;
      case (phase)
        PH_LOAD: begin
          if (in_fire) begin
            for (k = 0; k < 8; k = k + 1)
              staging[k] <= s_tdata[12*k +: 12];
            have <= 1'b1;
          end else if (drain & (wlane == 3'd7)) begin
            have <= 1'b0;
          end
          if (drain) widx <= widx + 1;
          if (load_done) phase <= PH_RUN;
        end
        PH_RUN: begin
          if (done) begin
            phase <= PH_READ;
            relem <= 0;
            orow <= 0;
          end
        end
        PH_READ: begin
          ostg[relem] <= ext_rdata[8:0];
          relem <= relem + 1;
          if (relem == 3'd7) phase <= PH_EMIT;
        end
        PH_EMIT: begin
          if (out_fire) begin
            if (orow == 3'd7) begin
              phase <= PH_LOAD;
              widx <= 0;
            end else begin
              orow <= orow + 1;
              phase <= PH_READ;
            end
          end
        end
      endcase
    end
  end

  genvar oc;
  generate
    for (oc = 0; oc < 8; oc = oc + 1) begin : olanes
      assign m_tdata[9*oc +: 9] = ostg[oc];
    end
  endgenerate
endmodule
