// Hand-crafted AXI-Stream adapter for the XLS-generated IDCT kernel
// (XLS compiles the dataflow function; the stream interface is manual).
// Collects eight rows, launches one matrix per free output slot into the
// kernel, and serializes results from two capture banks; a valid-token
// shift register tracks wavefronts through the generated pipeline.

module xls_idct_axis #(
  parameter LATENCY = 0   // pipeline stages reported by XLS codegen
)(
  input              clk,
  input              rst,
  input  [95:0]      s_tdata,
  input              s_tvalid,
  input              s_tlast,
  output             s_tready,
  output [71:0]      m_tdata,
  output             m_tvalid,
  output             m_tlast,
  input              m_tready
);
  reg [2:0]  in_cnt;
  reg        pend;
  reg [2:0]  in_flight;
  reg        cap_ptr;
  reg        out_full [0:1];
  reg [2:0]  out_cnt;
  reg        out_rptr;
  reg signed [11:0] in_regs [0:63];
  reg signed [8:0]  outbuf  [0:1][0:63];
  reg [LATENCY:0]   token;

  assign m_tvalid = out_full[out_rptr];
  wire out_fire   = m_tvalid & m_tready;
  assign m_tlast  = (out_cnt == 3'd7);
  wire out_done   = out_fire & m_tlast;

  wire slots_free = in_flight < 3'd2;
  wire launch     = pend & (slots_free | out_done);
  assign s_tready = ~pend | launch;
  wire in_fire    = s_tvalid & s_tready;
  wire in_last    = in_fire & (in_cnt == 3'd7);

  wire [575:0] kernel_y;   // 64 x 9-bit results
  xls_idct_kernel u_kernel (
    .clk(clk),
    .x(in_regs_flat),
    .y(kernel_y)
  );
  wire [767:0] in_regs_flat;
  genvar gi;
  generate
    for (gi = 0; gi < 64; gi = gi + 1) begin : flat
      assign in_regs_flat[12*gi +: 12] = in_regs[gi];
    end
  endgenerate

  wire arrive = (LATENCY == 0) ? launch : token[LATENCY];

  integer k;
  always @(posedge clk) begin
    if (rst) begin
      in_cnt <= 0; pend <= 0; in_flight <= 0; cap_ptr <= 0;
      out_cnt <= 0; out_rptr <= 0; token <= 0;
      out_full[0] <= 0; out_full[1] <= 0;
    end else begin
      token <= {token[LATENCY-1:0], launch};
      if (in_fire) begin
        for (k = 0; k < 8; k = k + 1)
          in_regs[{in_cnt, 3'b000} + k] <= s_tdata[12*k +: 12];
        in_cnt <= in_cnt + 1;
      end
      pend <= in_last | (pend & ~launch);
      in_flight <= in_flight + (launch ? 1 : 0) - (out_done ? 1 : 0);
      if (arrive) begin
        for (k = 0; k < 64; k = k + 1)
          outbuf[cap_ptr][k] <= kernel_y[9*k +: 9];
        out_full[cap_ptr] <= 1'b1;
        cap_ptr <= ~cap_ptr;
      end
      if (out_done & ~(arrive & (cap_ptr == out_rptr)))
        out_full[out_rptr] <= 1'b0;
      if (out_fire) out_cnt <= out_cnt + 1;
      if (out_done) out_rptr <= ~out_rptr;
    end
  end

  genvar oc;
  generate
    for (oc = 0; oc < 8; oc = oc + 1) begin : olanes
      assign m_tdata[9*oc +: 9] = outbuf[out_rptr][{out_cnt, 3'b000} + oc];
    end
  endgenerate
endmodule
