// Self-checking testbench for the AXI-Stream IDCT designs (the shape the
// paper's repository ships next to its RTL). Drives matrices read from
// vectors.hex through the DUT and compares against expected.hex; the C++
// test suite uses its own cycle-accurate testbench, so this file is the
// artifact a user would run under a commercial simulator with the output
// of examples/export_rtl. Not counted in the LOC metric (testbenches are
// excluded there, as in the paper).
`timescale 1ns/1ps

module tb_idct;
  reg clk = 0;
  reg rst = 1;
  reg  [95:0] s_tdata;
  reg         s_tvalid = 0;
  reg         s_tlast = 0;
  wire        s_tready;
  wire [71:0] m_tdata;
  wire        m_tvalid;
  wire        m_tlast;
  reg         m_tready = 1;

  idct_axis dut (
    .clk(clk), .rst(rst),
    .s_tdata(s_tdata), .s_tvalid(s_tvalid), .s_tlast(s_tlast),
    .s_tready(s_tready),
    .m_tdata(m_tdata), .m_tvalid(m_tvalid), .m_tlast(m_tlast),
    .m_tready(m_tready)
  );

  always #5 clk = ~clk;

  localparam MATRICES = 8;
  reg [95:0] vectors  [0:8*MATRICES-1];
  reg [71:0] expected [0:8*MATRICES-1];
  integer in_beat = 0;
  integer out_beat = 0;
  integer errors = 0;

  initial begin
    $readmemh("vectors.hex", vectors);
    $readmemh("expected.hex", expected);
    repeat (4) @(posedge clk);
    rst <= 0;
  end

  // Source: one row per accepted beat.
  always @(posedge clk) begin
    if (!rst && in_beat < 8*MATRICES) begin
      s_tvalid <= 1'b1;
      s_tdata  <= vectors[in_beat];
      s_tlast  <= (in_beat % 8 == 7);
      if (s_tvalid && s_tready)
        in_beat <= in_beat + 1;
    end else begin
      s_tvalid <= 1'b0;
    end
  end

  // Sink: compare every delivered row.
  always @(posedge clk) begin
    if (!rst && m_tvalid && m_tready) begin
      if (m_tdata !== expected[out_beat]) begin
        $display("MISMATCH beat %0d: got %h, want %h", out_beat, m_tdata,
                 expected[out_beat]);
        errors = errors + 1;
      end
      if (m_tlast !== (out_beat % 8 == 7)) begin
        $display("TLAST error at beat %0d", out_beat);
        errors = errors + 1;
      end
      out_beat <= out_beat + 1;
      if (out_beat == 8*MATRICES - 1) begin
        if (errors == 0) $display("PASS: %0d matrices", MATRICES);
        else $display("FAIL: %0d errors", errors);
        $finish;
      end
    end
  end

  initial begin
    #100000;
    $display("TIMEOUT");
    $finish;
  end
endmodule
