// 8x8 IDCT, initial Verilog design: a naive combinational 2-D transform
// (eight row units chained into eight column units) behind a row-by-row
// AXI-Stream adapter. 32-bit arithmetic as in the ISO reference C code.

module idct_row (
  input  signed [31:0] i0,
  input  signed [31:0] i1,
  input  signed [31:0] i2,
  input  signed [31:0] i3,
  input  signed [31:0] i4,
  input  signed [31:0] i5,
  input  signed [31:0] i6,
  input  signed [31:0] i7,
  output signed [31:0] o0,
  output signed [31:0] o1,
  output signed [31:0] o2,
  output signed [31:0] o3,
  output signed [31:0] o4,
  output signed [31:0] o5,
  output signed [31:0] o6,
  output signed [31:0] o7
);
  localparam signed [31:0] W1 = 2841;
  localparam signed [31:0] W2 = 2676;
  localparam signed [31:0] W3 = 2408;
  localparam signed [31:0] W5 = 1609;
  localparam signed [31:0] W6 = 1108;
  localparam signed [31:0] W7 = 565;

  wire signed [31:0] x0 = (i0 <<< 11) + 32'sd128;
  wire signed [31:0] x1 = i4 <<< 11;
  wire signed [31:0] x2 = i6;
  wire signed [31:0] x3 = i2;
  wire signed [31:0] x4 = i1;
  wire signed [31:0] x5 = i7;
  wire signed [31:0] x6 = i5;
  wire signed [31:0] x7 = i3;

  // first stage
  wire signed [31:0] s1_a = W7 * (x4 + x5);
  wire signed [31:0] s1_x4 = s1_a + (W1 - W7) * x4;
  wire signed [31:0] s1_x5 = s1_a - (W1 + W7) * x5;
  wire signed [31:0] s1_b = W3 * (x6 + x7);
  wire signed [31:0] s1_x6 = s1_b - (W3 - W5) * x6;
  wire signed [31:0] s1_x7 = s1_b - (W3 + W5) * x7;

  // second stage
  wire signed [31:0] s2_x8 = x0 + x1;
  wire signed [31:0] s2_x0 = x0 - x1;
  wire signed [31:0] s2_a  = W6 * (x3 + x2);
  wire signed [31:0] s2_x2 = s2_a - (W2 + W6) * x2;
  wire signed [31:0] s2_x3 = s2_a + (W2 - W6) * x3;
  wire signed [31:0] s2_x1 = s1_x4 + s1_x6;
  wire signed [31:0] s2_x4 = s1_x4 - s1_x6;
  wire signed [31:0] s2_x6 = s1_x5 + s1_x7;
  wire signed [31:0] s2_x5 = s1_x5 - s1_x7;

  // third stage
  wire signed [31:0] s3_x7 = s2_x8 + s2_x3;
  wire signed [31:0] s3_x8 = s2_x8 - s2_x3;
  wire signed [31:0] s3_x3 = s2_x0 + s2_x2;
  wire signed [31:0] s3_x0 = s2_x0 - s2_x2;
  wire signed [31:0] s3_x2 = (32'sd181 * (s2_x4 + s2_x5) + 32'sd128) >>> 8;
  wire signed [31:0] s3_x4 = (32'sd181 * (s2_x4 - s2_x5) + 32'sd128) >>> 8;

  // fourth stage
  assign o0 = (s3_x7 + s2_x1) >>> 8;
  assign o1 = (s3_x3 + s3_x2) >>> 8;
  assign o2 = (s3_x0 + s3_x4) >>> 8;
  assign o3 = (s3_x8 + s2_x6) >>> 8;
  assign o4 = (s3_x8 - s2_x6) >>> 8;
  assign o5 = (s3_x0 - s3_x4) >>> 8;
  assign o6 = (s3_x3 - s3_x2) >>> 8;
  assign o7 = (s3_x7 - s2_x1) >>> 8;
endmodule

module idct_col (
  input  signed [31:0] i0,
  input  signed [31:0] i1,
  input  signed [31:0] i2,
  input  signed [31:0] i3,
  input  signed [31:0] i4,
  input  signed [31:0] i5,
  input  signed [31:0] i6,
  input  signed [31:0] i7,
  output signed [8:0]  o0,
  output signed [8:0]  o1,
  output signed [8:0]  o2,
  output signed [8:0]  o3,
  output signed [8:0]  o4,
  output signed [8:0]  o5,
  output signed [8:0]  o6,
  output signed [8:0]  o7
);
  localparam signed [31:0] W1 = 2841;
  localparam signed [31:0] W2 = 2676;
  localparam signed [31:0] W3 = 2408;
  localparam signed [31:0] W5 = 1609;
  localparam signed [31:0] W6 = 1108;
  localparam signed [31:0] W7 = 565;

  function signed [8:0] iclip(input signed [31:0] v);
    iclip = v < -256 ? -9'sd256 : (v > 255 ? 9'sd255 : v[8:0]);
  endfunction

  wire signed [31:0] x0 = (i0 <<< 8) + 32'sd8192;
  wire signed [31:0] x1 = i4 <<< 8;
  wire signed [31:0] x2 = i6;
  wire signed [31:0] x3 = i2;
  wire signed [31:0] x4 = i1;
  wire signed [31:0] x5 = i7;
  wire signed [31:0] x6 = i5;
  wire signed [31:0] x7 = i3;

  // first stage
  wire signed [31:0] s1_a  = W7 * (x4 + x5) + 32'sd4;
  wire signed [31:0] s1_x4 = (s1_a + (W1 - W7) * x4) >>> 3;
  wire signed [31:0] s1_x5 = (s1_a - (W1 + W7) * x5) >>> 3;
  wire signed [31:0] s1_b  = W3 * (x6 + x7) + 32'sd4;
  wire signed [31:0] s1_x6 = (s1_b - (W3 - W5) * x6) >>> 3;
  wire signed [31:0] s1_x7 = (s1_b - (W3 + W5) * x7) >>> 3;

  // second stage
  wire signed [31:0] s2_x8 = x0 + x1;
  wire signed [31:0] s2_x0 = x0 - x1;
  wire signed [31:0] s2_a  = W6 * (x3 + x2) + 32'sd4;
  wire signed [31:0] s2_x2 = (s2_a - (W2 + W6) * x2) >>> 3;
  wire signed [31:0] s2_x3 = (s2_a + (W2 - W6) * x3) >>> 3;
  wire signed [31:0] s2_x1 = s1_x4 + s1_x6;
  wire signed [31:0] s2_x4 = s1_x4 - s1_x6;
  wire signed [31:0] s2_x6 = s1_x5 + s1_x7;
  wire signed [31:0] s2_x5 = s1_x5 - s1_x7;

  // third stage
  wire signed [31:0] s3_x7 = s2_x8 + s2_x3;
  wire signed [31:0] s3_x8 = s2_x8 - s2_x3;
  wire signed [31:0] s3_x3 = s2_x0 + s2_x2;
  wire signed [31:0] s3_x0 = s2_x0 - s2_x2;
  wire signed [31:0] s3_x2 = (32'sd181 * (s2_x4 + s2_x5) + 32'sd128) >>> 8;
  wire signed [31:0] s3_x4 = (32'sd181 * (s2_x4 - s2_x5) + 32'sd128) >>> 8;

  // fourth stage
  assign o0 = iclip((s3_x7 + s2_x1) >>> 14);
  assign o1 = iclip((s3_x3 + s3_x2) >>> 14);
  assign o2 = iclip((s3_x0 + s3_x4) >>> 14);
  assign o3 = iclip((s3_x8 + s2_x6) >>> 14);
  assign o4 = iclip((s3_x8 - s2_x6) >>> 14);
  assign o5 = iclip((s3_x0 - s3_x4) >>> 14);
  assign o6 = iclip((s3_x3 - s3_x2) >>> 14);
  assign o7 = iclip((s3_x7 - s2_x1) >>> 14);
endmodule

module idct_axis (
  input              clk,
  input              rst,
  input  [95:0]      s_tdata,
  input              s_tvalid,
  input              s_tlast,
  output             s_tready,
  output [71:0]      m_tdata,
  output             m_tvalid,
  output             m_tlast,
  input              m_tready
);
  reg  [2:0] in_cnt;
  reg        pend;
  reg        out_active;
  reg  [2:0] out_cnt;
  reg signed [11:0] in_regs  [0:63];
  reg signed [8:0]  out_regs [0:63];

  wire out_last      = (out_cnt == 3'd7);
  wire out_fire      = out_active & m_tready;
  wire out_last_fire = out_fire & out_last;
  wire capture_now   = pend & (~out_active | out_last_fire);
  assign s_tready    = ~pend | capture_now;
  wire in_fire       = s_tvalid & s_tready;
  wire in_last_fire  = in_fire & (in_cnt == 3'd7);

  assign m_tvalid = out_active;
  assign m_tlast  = out_last;

  // 2-D combinational transform: 8 row units feeding 8 column units.
  wire signed [31:0] row_out [0:63];
  wire signed [8:0]  col_out [0:63];
  genvar r, c;
  generate
    for (r = 0; r < 8; r = r + 1) begin : rows
      idct_row u_row (
        .i0({{20{in_regs[8*r+0][11]}}, in_regs[8*r+0]}),
        .i1({{20{in_regs[8*r+1][11]}}, in_regs[8*r+1]}),
        .i2({{20{in_regs[8*r+2][11]}}, in_regs[8*r+2]}),
        .i3({{20{in_regs[8*r+3][11]}}, in_regs[8*r+3]}),
        .i4({{20{in_regs[8*r+4][11]}}, in_regs[8*r+4]}),
        .i5({{20{in_regs[8*r+5][11]}}, in_regs[8*r+5]}),
        .i6({{20{in_regs[8*r+6][11]}}, in_regs[8*r+6]}),
        .i7({{20{in_regs[8*r+7][11]}}, in_regs[8*r+7]}),
        .o0(row_out[8*r+0]), .o1(row_out[8*r+1]), .o2(row_out[8*r+2]),
        .o3(row_out[8*r+3]), .o4(row_out[8*r+4]), .o5(row_out[8*r+5]),
        .o6(row_out[8*r+6]), .o7(row_out[8*r+7])
      );
    end
    for (c = 0; c < 8; c = c + 1) begin : cols
      idct_col u_col (
        .i0(row_out[c]),      .i1(row_out[c+8]),  .i2(row_out[c+16]),
        .i3(row_out[c+24]),   .i4(row_out[c+32]), .i5(row_out[c+40]),
        .i6(row_out[c+48]),   .i7(row_out[c+56]),
        .o0(col_out[c]),      .o1(col_out[c+8]),  .o2(col_out[c+16]),
        .o3(col_out[c+24]),   .o4(col_out[c+32]), .o5(col_out[c+40]),
        .o6(col_out[c+48]),   .o7(col_out[c+56])
      );
    end
  endgenerate

  integer k;
  always @(posedge clk) begin
    if (rst) begin
      in_cnt <= 0; pend <= 0; out_active <= 0; out_cnt <= 0;
    end else begin
      if (in_fire) begin
        for (k = 0; k < 8; k = k + 1)
          in_regs[{in_cnt, 3'b000} + k] <= s_tdata[12*k +: 12];
        in_cnt <= in_cnt + 1;
      end
      pend <= in_last_fire | (pend & ~capture_now);
      if (capture_now) begin
        for (k = 0; k < 64; k = k + 1)
          out_regs[k] <= col_out[k];
        out_active <= 1'b1;
        out_cnt <= 0;
      end else if (out_last_fire) begin
        out_active <= 1'b0;
      end else if (out_fire) begin
        out_cnt <= out_cnt + 1;
      end
    end
  end

  genvar oc;
  generate
    for (oc = 0; oc < 8; oc = oc + 1) begin : olanes
      assign m_tdata[9*oc +: 9] = out_regs[{out_cnt, 3'b000} + oc];
    end
  endgenerate
endmodule
