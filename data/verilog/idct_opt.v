// 8x8 IDCT, optimized Verilog design: one row unit processes each arriving
// beat, ping-pong row buffers feed a single column unit one column per
// cycle, ping-pong output buffers stream results out. Latency 24 cycles,
// one matrix per 8 beats.

module idct_row (
  input  signed [31:0] i0,
  input  signed [31:0] i1,
  input  signed [31:0] i2,
  input  signed [31:0] i3,
  input  signed [31:0] i4,
  input  signed [31:0] i5,
  input  signed [31:0] i6,
  input  signed [31:0] i7,
  output signed [31:0] o0,
  output signed [31:0] o1,
  output signed [31:0] o2,
  output signed [31:0] o3,
  output signed [31:0] o4,
  output signed [31:0] o5,
  output signed [31:0] o6,
  output signed [31:0] o7
);
  localparam signed [31:0] W1 = 2841;
  localparam signed [31:0] W2 = 2676;
  localparam signed [31:0] W3 = 2408;
  localparam signed [31:0] W5 = 1609;
  localparam signed [31:0] W6 = 1108;
  localparam signed [31:0] W7 = 565;

  wire signed [31:0] x0 = (i0 <<< 11) + 32'sd128;
  wire signed [31:0] x1 = i4 <<< 11;
  wire signed [31:0] x2 = i6;
  wire signed [31:0] x3 = i2;
  wire signed [31:0] x4 = i1;
  wire signed [31:0] x5 = i7;
  wire signed [31:0] x6 = i5;
  wire signed [31:0] x7 = i3;

  wire signed [31:0] s1_a = W7 * (x4 + x5);
  wire signed [31:0] s1_x4 = s1_a + (W1 - W7) * x4;
  wire signed [31:0] s1_x5 = s1_a - (W1 + W7) * x5;
  wire signed [31:0] s1_b = W3 * (x6 + x7);
  wire signed [31:0] s1_x6 = s1_b - (W3 - W5) * x6;
  wire signed [31:0] s1_x7 = s1_b - (W3 + W5) * x7;

  wire signed [31:0] s2_x8 = x0 + x1;
  wire signed [31:0] s2_x0 = x0 - x1;
  wire signed [31:0] s2_a  = W6 * (x3 + x2);
  wire signed [31:0] s2_x2 = s2_a - (W2 + W6) * x2;
  wire signed [31:0] s2_x3 = s2_a + (W2 - W6) * x3;
  wire signed [31:0] s2_x1 = s1_x4 + s1_x6;
  wire signed [31:0] s2_x4 = s1_x4 - s1_x6;
  wire signed [31:0] s2_x6 = s1_x5 + s1_x7;
  wire signed [31:0] s2_x5 = s1_x5 - s1_x7;

  wire signed [31:0] s3_x7 = s2_x8 + s2_x3;
  wire signed [31:0] s3_x8 = s2_x8 - s2_x3;
  wire signed [31:0] s3_x3 = s2_x0 + s2_x2;
  wire signed [31:0] s3_x0 = s2_x0 - s2_x2;
  wire signed [31:0] s3_x2 = (32'sd181 * (s2_x4 + s2_x5) + 32'sd128) >>> 8;
  wire signed [31:0] s3_x4 = (32'sd181 * (s2_x4 - s2_x5) + 32'sd128) >>> 8;

  assign o0 = (s3_x7 + s2_x1) >>> 8;
  assign o1 = (s3_x3 + s3_x2) >>> 8;
  assign o2 = (s3_x0 + s3_x4) >>> 8;
  assign o3 = (s3_x8 + s2_x6) >>> 8;
  assign o4 = (s3_x8 - s2_x6) >>> 8;
  assign o5 = (s3_x0 - s3_x4) >>> 8;
  assign o6 = (s3_x3 - s3_x2) >>> 8;
  assign o7 = (s3_x7 - s2_x1) >>> 8;
endmodule

module idct_col (
  input  signed [31:0] i0,
  input  signed [31:0] i1,
  input  signed [31:0] i2,
  input  signed [31:0] i3,
  input  signed [31:0] i4,
  input  signed [31:0] i5,
  input  signed [31:0] i6,
  input  signed [31:0] i7,
  output signed [8:0]  o0,
  output signed [8:0]  o1,
  output signed [8:0]  o2,
  output signed [8:0]  o3,
  output signed [8:0]  o4,
  output signed [8:0]  o5,
  output signed [8:0]  o6,
  output signed [8:0]  o7
);
  localparam signed [31:0] W1 = 2841;
  localparam signed [31:0] W2 = 2676;
  localparam signed [31:0] W3 = 2408;
  localparam signed [31:0] W5 = 1609;
  localparam signed [31:0] W6 = 1108;
  localparam signed [31:0] W7 = 565;

  function signed [8:0] iclip(input signed [31:0] v);
    iclip = v < -256 ? -9'sd256 : (v > 255 ? 9'sd255 : v[8:0]);
  endfunction

  wire signed [31:0] x0 = (i0 <<< 8) + 32'sd8192;
  wire signed [31:0] x1 = i4 <<< 8;
  wire signed [31:0] x2 = i6;
  wire signed [31:0] x3 = i2;
  wire signed [31:0] x4 = i1;
  wire signed [31:0] x5 = i7;
  wire signed [31:0] x6 = i5;
  wire signed [31:0] x7 = i3;

  wire signed [31:0] s1_a  = W7 * (x4 + x5) + 32'sd4;
  wire signed [31:0] s1_x4 = (s1_a + (W1 - W7) * x4) >>> 3;
  wire signed [31:0] s1_x5 = (s1_a - (W1 + W7) * x5) >>> 3;
  wire signed [31:0] s1_b  = W3 * (x6 + x7) + 32'sd4;
  wire signed [31:0] s1_x6 = (s1_b - (W3 - W5) * x6) >>> 3;
  wire signed [31:0] s1_x7 = (s1_b - (W3 + W5) * x7) >>> 3;

  wire signed [31:0] s2_x8 = x0 + x1;
  wire signed [31:0] s2_x0 = x0 - x1;
  wire signed [31:0] s2_a  = W6 * (x3 + x2) + 32'sd4;
  wire signed [31:0] s2_x2 = (s2_a - (W2 + W6) * x2) >>> 3;
  wire signed [31:0] s2_x3 = (s2_a + (W2 - W6) * x3) >>> 3;
  wire signed [31:0] s2_x1 = s1_x4 + s1_x6;
  wire signed [31:0] s2_x4 = s1_x4 - s1_x6;
  wire signed [31:0] s2_x6 = s1_x5 + s1_x7;
  wire signed [31:0] s2_x5 = s1_x5 - s1_x7;

  wire signed [31:0] s3_x7 = s2_x8 + s2_x3;
  wire signed [31:0] s3_x8 = s2_x8 - s2_x3;
  wire signed [31:0] s3_x3 = s2_x0 + s2_x2;
  wire signed [31:0] s3_x0 = s2_x0 - s2_x2;
  wire signed [31:0] s3_x2 = (32'sd181 * (s2_x4 + s2_x5) + 32'sd128) >>> 8;
  wire signed [31:0] s3_x4 = (32'sd181 * (s2_x4 - s2_x5) + 32'sd128) >>> 8;

  assign o0 = iclip((s3_x7 + s2_x1) >>> 14);
  assign o1 = iclip((s3_x3 + s3_x2) >>> 14);
  assign o2 = iclip((s3_x0 + s3_x4) >>> 14);
  assign o3 = iclip((s3_x8 + s2_x6) >>> 14);
  assign o4 = iclip((s3_x8 - s2_x6) >>> 14);
  assign o5 = iclip((s3_x0 - s3_x4) >>> 14);
  assign o6 = iclip((s3_x3 - s3_x2) >>> 14);
  assign o7 = iclip((s3_x7 - s2_x1) >>> 14);
endmodule

module idct_axis (
  input              clk,
  input              rst,
  input  [95:0]      s_tdata,
  input              s_tvalid,
  input              s_tlast,
  output             s_tready,
  output [71:0]      m_tdata,
  output             m_tvalid,
  output             m_tlast,
  input              m_tready
);
  reg  [2:0] in_cnt;
  reg        in_buf;
  reg        row_full [0:1];
  reg  [2:0] col_cnt;
  reg        col_rptr, col_wptr;
  reg        out_full [0:1];
  reg  [2:0] out_cnt;
  reg        out_rptr;
  reg signed [19:0] rowbuf [0:1][0:63];
  reg signed [8:0]  outbuf [0:1][0:63];

  assign s_tready   = ~row_full[in_buf];
  wire in_fire      = s_tvalid & s_tready;
  wire in_last_fire = in_fire & (in_cnt == 3'd7);

  // one row unit on the incoming beat
  wire signed [31:0] row_out [0:7];
  idct_row u_row (
    .i0({{20{s_tdata[11]}},  s_tdata[11:0]}),
    .i1({{20{s_tdata[23]}},  s_tdata[23:12]}),
    .i2({{20{s_tdata[35]}},  s_tdata[35:24]}),
    .i3({{20{s_tdata[47]}},  s_tdata[47:36]}),
    .i4({{20{s_tdata[59]}},  s_tdata[59:48]}),
    .i5({{20{s_tdata[71]}},  s_tdata[71:60]}),
    .i6({{20{s_tdata[83]}},  s_tdata[83:72]}),
    .i7({{20{s_tdata[95]}},  s_tdata[95:84]}),
    .o0(row_out[0]), .o1(row_out[1]), .o2(row_out[2]), .o3(row_out[3]),
    .o4(row_out[4]), .o5(row_out[5]), .o6(row_out[6]), .o7(row_out[7])
  );

  // one column unit on the selected stored column
  wire col_proc = row_full[col_rptr] & ~out_full[col_wptr];
  wire col_done = col_proc & (col_cnt == 3'd7);
  wire signed [8:0] col_out [0:7];
  idct_col u_col (
    .i0({{12{rowbuf[col_rptr][{3'd0, col_cnt}][19]}}, rowbuf[col_rptr][{3'd0, col_cnt}]}),
    .i1({{12{rowbuf[col_rptr][{3'd1, col_cnt}][19]}}, rowbuf[col_rptr][{3'd1, col_cnt}]}),
    .i2({{12{rowbuf[col_rptr][{3'd2, col_cnt}][19]}}, rowbuf[col_rptr][{3'd2, col_cnt}]}),
    .i3({{12{rowbuf[col_rptr][{3'd3, col_cnt}][19]}}, rowbuf[col_rptr][{3'd3, col_cnt}]}),
    .i4({{12{rowbuf[col_rptr][{3'd4, col_cnt}][19]}}, rowbuf[col_rptr][{3'd4, col_cnt}]}),
    .i5({{12{rowbuf[col_rptr][{3'd5, col_cnt}][19]}}, rowbuf[col_rptr][{3'd5, col_cnt}]}),
    .i6({{12{rowbuf[col_rptr][{3'd6, col_cnt}][19]}}, rowbuf[col_rptr][{3'd6, col_cnt}]}),
    .i7({{12{rowbuf[col_rptr][{3'd7, col_cnt}][19]}}, rowbuf[col_rptr][{3'd7, col_cnt}]}),
    .o0(col_out[0]), .o1(col_out[1]), .o2(col_out[2]), .o3(col_out[3]),
    .o4(col_out[4]), .o5(col_out[5]), .o6(col_out[6]), .o7(col_out[7])
  );

  assign m_tvalid = out_full[out_rptr];
  wire out_fire   = m_tvalid & m_tready;
  assign m_tlast  = (out_cnt == 3'd7);
  wire out_done   = out_fire & m_tlast;

  integer k;
  always @(posedge clk) begin
    if (rst) begin
      in_cnt <= 0; in_buf <= 0; col_cnt <= 0; col_rptr <= 0; col_wptr <= 0;
      out_cnt <= 0; out_rptr <= 0;
      row_full[0] <= 0; row_full[1] <= 0;
      out_full[0] <= 0; out_full[1] <= 0;
    end else begin
      if (in_fire) begin
        for (k = 0; k < 8; k = k + 1)
          rowbuf[in_buf][{in_cnt, 3'b000} + k] <= row_out[k][19:0];
        in_cnt <= in_cnt + 1;
        if (in_last_fire) begin
          in_buf <= ~in_buf;
          row_full[in_buf] <= 1'b1;
        end
      end
      if (col_proc) begin
        for (k = 0; k < 8; k = k + 1)
          outbuf[col_wptr][{k[2:0], col_cnt}] <= col_out[k];
        col_cnt <= col_cnt + 1;
        if (col_done) begin
          row_full[col_rptr] <= 1'b0;
          out_full[col_wptr] <= 1'b1;
          col_rptr <= ~col_rptr;
          col_wptr <= ~col_wptr;
        end
      end
      if (out_fire) begin
        out_cnt <= out_cnt + 1;
        if (out_done) begin
          out_full[out_rptr] <= 1'b0;
          out_rptr <= ~out_rptr;
        end
      end
    end
  end

  genvar oc;
  generate
    for (oc = 0; oc < 8; oc = oc + 1) begin : olanes
      assign m_tdata[9*oc +: 9] = outbuf[out_rptr][{out_cnt, 3'b000} + oc];
    end
  endgenerate
endmodule
