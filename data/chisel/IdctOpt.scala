// 8x8 IDCT, optimized Chisel design: one row unit at the input, ping-pong
// row buffers (widths inferred from the row pass), one column unit walking
// a column per cycle, ping-pong output buffers. Latency 24, periodicity 8.
package idct

import chisel3._
import chisel3.util._

class IdctAxisOpt extends Module {
  val io = IO(new Bundle {
    val s = Flipped(Decoupled(new Bundle {
      val data = Vec(8, SInt(12.W)); val last = Bool()
    }))
    val m = Decoupled(new Bundle {
      val data = Vec(8, SInt(9.W)); val last = Bool()
    })
  })

  val inCnt   = RegInit(0.U(3.W))
  val inBuf   = RegInit(false.B)
  val rowFull = RegInit(VecInit(Seq.fill(2)(false.B)))
  val colCnt  = RegInit(0.U(3.W))
  val colR    = RegInit(false.B)
  val colW    = RegInit(false.B)
  val outFull = RegInit(VecInit(Seq.fill(2)(false.B)))
  val outCnt  = RegInit(0.U(3.W))
  val outR    = RegInit(false.B)

  io.s.ready := !rowFull(inBuf)
  val inFire     = io.s.fire
  val inLastFire = inFire && inCnt === 7.U

  // Row pass on the arriving beat; the register type is inferred from the
  // butterfly result, not declared.
  val rowNow = Butterfly.row(io.s.bits.data)
  val rowBuf = Reg(Vec(2, Vec(8, Vec(8, chiselTypeOf(rowNow.head)))))
  when(inFire) {
    rowBuf(inBuf)(inCnt) := VecInit(rowNow)
    inCnt := inCnt + 1.U
    when(inLastFire) {
      inBuf := !inBuf
      rowFull(inBuf) := true.B
    }
  }

  val colProc = rowFull(colR) && !outFull(colW)
  val colDone = colProc && colCnt === 7.U
  val colIn   = VecInit((0 until 8).map(r => rowBuf(colR)(r)(colCnt)))
  val colOut  = Butterfly.col(colIn)

  val outBuf = Reg(Vec(2, Vec(8, Vec(8, SInt(9.W)))))
  when(colProc) {
    for (r <- 0 until 8)
      outBuf(colW)(r)(colCnt) := colOut(r)
    colCnt := colCnt + 1.U
    when(colDone) {
      rowFull(colR) := false.B
      outFull(colW) := true.B
      colR := !colR
      colW := !colW
    }
  }

  io.m.valid     := outFull(outR)
  io.m.bits.last := outCnt === 7.U
  io.m.bits.data := outBuf(outR)(outCnt)
  when(io.m.fire) {
    outCnt := outCnt + 1.U
    when(io.m.bits.last) {
      outFull(outR) := false.B
      outR := !outR
    }
  }
}
