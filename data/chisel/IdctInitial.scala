// 8x8 IDCT, initial Chisel design: naive combinational 2-D transform with
// inferred bit widths behind the row-by-row AXI-Stream adapter.
package idct

import chisel3._
import chisel3.util._


class IdctAxis extends Module {
  val io = IO(new Bundle {
    val s = Flipped(Decoupled(new Bundle {
      val data = Vec(8, SInt(12.W)); val last = Bool()
    }))
    val m = Decoupled(new Bundle {
      val data = Vec(8, SInt(9.W)); val last = Bool()
    })
  })

  val inCnt     = RegInit(0.U(3.W))
  val pend      = RegInit(false.B)
  val outActive = RegInit(false.B)
  val outCnt    = RegInit(0.U(3.W))
  val inRegs    = Reg(Vec(8, Vec(8, SInt(12.W))))
  val outRegs   = Reg(Vec(8, Vec(8, SInt(9.W))))

  val outLast     = outCnt === 7.U
  val outFire     = io.m.fire
  val outLastFire = outFire && outLast
  val capture     = pend && (!outActive || outLastFire)
  io.s.ready     := !pend || capture
  val inFire      = io.s.fire
  val inLastFire  = inFire && inCnt === 7.U

  when(inFire) {
    inRegs(inCnt) := io.s.bits.data
    inCnt := inCnt + 1.U
  }
  pend := inLastFire || (pend && !capture)

  // 8 row units chained into 8 column units, widths inferred throughout.
  val rowOut = VecInit(inRegs.map(r => VecInit(Butterfly.row(r))))
  val result = (0 until 8).map { c =>
    Butterfly.col(VecInit((0 until 8).map(r => rowOut(r)(c))))
  }

  when(capture) {
    for (r <- 0 until 8; c <- 0 until 8)
      outRegs(r)(c) := result(c)(r)
    outActive := true.B
    outCnt := 0.U
  }.elsewhen(outLastFire) {
    outActive := false.B
  }.elsewhen(outFire) {
    outCnt := outCnt + 1.U
  }

  io.m.valid     := outActive
  io.m.bits.last := outLast
  io.m.bits.data := outRegs(outCnt)
}
