// Shared Chen-Wang butterfly passes with inferred widths.
package idct

import chisel3._
import chisel3.util._

object Butterfly {
  val W1 = 2841.S; val W2 = 2676.S; val W3 = 2408.S
  val W5 = 1609.S; val W6 = 1108.S; val W7 = 565.S

  def row(blk: Vec[SInt]): Seq[SInt] = {
    val x1 = blk(4) << 11
    val x2 = blk(6); val x3 = blk(2); val x4 = blk(1)
    val x5 = blk(7); val x6 = blk(5); val x7 = blk(3)
    val x0 = (blk(0) << 11) + 128.S

    val a  = W7 * (x4 + x5)
    val r4 = a + (W1 - W7) * x4
    val r5 = a - (W1 + W7) * x5
    val b  = W3 * (x6 + x7)
    val r6 = b - (W3 - W5) * x6
    val r7 = b - (W3 + W5) * x7

    val x8 = x0 + x1
    val y0 = x0 - x1
    val c  = W6 * (x3 + x2)
    val y2 = c - (W2 + W6) * x2
    val y3 = c + (W2 - W6) * x3
    val y1 = r4 + r6
    val y4 = r4 - r6
    val y6 = r5 + r7
    val y5 = r5 - r7

    val z7 = x8 + y3
    val z8 = x8 - y3
    val z3 = y0 + y2
    val z0 = y0 - y2
    val z2 = (181.S * (y4 + y5) + 128.S) >> 8
    val z4 = (181.S * (y4 - y5) + 128.S) >> 8

    Seq((z7 + y1) >> 8, (z3 + z2) >> 8, (z0 + z4) >> 8, (z8 + y6) >> 8,
        (z8 - y6) >> 8, (z0 - z4) >> 8, (z3 - z2) >> 8, (z7 - y1) >> 8)
  }

  def clip9(v: SInt): SInt =
    Mux(v < -256.S, -256.S, Mux(v > 255.S, 255.S, v))(8, 0).asSInt

  def col(blk: Vec[SInt]): Seq[SInt] = {
    val x1 = blk(4) << 8
    val x2 = blk(6); val x3 = blk(2); val x4 = blk(1)
    val x5 = blk(7); val x6 = blk(5); val x7 = blk(3)
    val x0 = (blk(0) << 8) + 8192.S

    val a  = W7 * (x4 + x5) + 4.S
    val r4 = (a + (W1 - W7) * x4) >> 3
    val r5 = (a - (W1 + W7) * x5) >> 3
    val b  = W3 * (x6 + x7) + 4.S
    val r6 = (b - (W3 - W5) * x6) >> 3
    val r7 = (b - (W3 + W5) * x7) >> 3

    val x8 = x0 + x1
    val y0 = x0 - x1
    val c  = W6 * (x3 + x2) + 4.S
    val y2 = (c - (W2 + W6) * x2) >> 3
    val y3 = (c + (W2 - W6) * x3) >> 3
    val y1 = r4 + r6
    val y4 = r4 - r6
    val y6 = r5 + r7
    val y5 = r5 - r7

    val z7 = x8 + y3
    val z8 = x8 - y3
    val z3 = y0 + y2
    val z0 = y0 - y2
    val z2 = (181.S * (y4 + y5) + 128.S) >> 8
    val z4 = (181.S * (y4 - y5) + 128.S) >> 8

    Seq(clip9((z7 + y1) >> 14), clip9((z3 + z2) >> 14),
        clip9((z0 + z4) >> 14), clip9((z8 + y6) >> 14),
        clip9((z8 - y6) >> 14), clip9((z0 - z4) >> 14),
        clip9((z3 - z2) >> 14), clip9((z7 - y1) >> 14))
  }
}
