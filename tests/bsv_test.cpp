// Tests for the BSV rule framework and design family: scheduler semantics
// (conflicts, urgency, conflict_free), bit-exactness of both designs, the
// measured scheduling bubble (periodicity 9), and the paper's finding that
// scheduler options barely move quality.
#include "bsv/designs.hpp"
#include "bsv/rules.hpp"

#include <gtest/gtest.h>

#include "axis/testbench.hpp"
#include "base/rng.hpp"
#include "idct/chenwang.hpp"
#include "sim/simulator.hpp"
#include "synth/synthesize.hpp"
#include "testutil.hpp"

namespace hlshc::bsv {
namespace {

using netlist::Design;
using netlist::kInvalidNode;
using netlist::NodeId;
using testutil::software_idct;
using testutil::uniform_coeff_block;

// ---- rule framework ----------------------------------------------------------

TEST(RuleFramework, NonConflictingRulesFireTogether) {
  RuleModule m("t");
  Design& d = m.design();
  NodeId a = m.mk_reg(8, 0, "a");
  NodeId b = m.mk_reg(8, 0, "b");
  NodeId one = d.constant(1, 1);
  m.add_rule("inc_a", one, {{a, d.add(a, d.constant(8, 1), 8), kInvalidNode}});
  m.add_rule("inc_b", one, {{b, d.add(b, d.constant(8, 2), 8), kInvalidNode}});
  ScheduleInfo info = m.compile();
  EXPECT_EQ(info.conflict_pairs, 0);
  Design design = m.take();
  design.output("a", a);
  design.output("b", b);
  sim::Simulator sim(design);
  sim.run(3);
  EXPECT_EQ(sim.output_i64("a"), 3);  // both rules fired every cycle
  EXPECT_EQ(sim.output_i64("b"), 6);
}

TEST(RuleFramework, ConflictingRulesSerializeByUrgency) {
  RuleModule m("t");
  Design& d = m.design();
  NodeId a = m.mk_reg(8, 0, "a");
  NodeId one = d.constant(1, 1);
  m.add_rule("set5", one, {{a, d.constant(8, 5), kInvalidNode}});
  m.add_rule("set9", one, {{a, d.constant(8, 9), kInvalidNode}});
  ScheduleInfo info = m.compile();
  EXPECT_EQ(info.conflict_pairs, 1);
  Design design = m.take();
  design.output("a", a);
  sim::Simulator sim(design);
  sim.step();
  EXPECT_EQ(sim.output_i64("a"), 5);  // declaration order: set5 more urgent
}

TEST(RuleFramework, ReversedUrgencyFlipsWinner) {
  RuleModule m("t");
  Design& d = m.design();
  NodeId a = m.mk_reg(8, 0, "a");
  NodeId one = d.constant(1, 1);
  m.add_rule("set5", one, {{a, d.constant(8, 5), kInvalidNode}});
  m.add_rule("set9", one, {{a, d.constant(8, 9), kInvalidNode}});
  SchedulerOptions opt;
  opt.urgency = UrgencyOrder::kReversed;
  m.compile(opt);
  Design design = m.take();
  design.output("a", a);
  sim::Simulator sim(design);
  sim.step();
  EXPECT_EQ(sim.output_i64("a"), 9);
}

TEST(RuleFramework, GuardGatesFiring) {
  RuleModule m("t");
  Design& d = m.design();
  NodeId go = d.input("go", 1);
  NodeId a = m.mk_reg(8, 42, "a");
  m.add_rule("w", go, {{a, d.constant(8, 1), kInvalidNode}});
  m.compile();
  Design design = m.take();
  design.output("a", a);
  sim::Simulator sim(design);
  sim.set_input("go", 0);
  sim.step();
  EXPECT_EQ(sim.output_i64("a"), 42);
  sim.set_input("go", 1);
  sim.step();
  EXPECT_EQ(sim.output_i64("a"), 1);
}

TEST(RuleFramework, PerActionEnableGatesWrite) {
  RuleModule m("t");
  Design& d = m.design();
  NodeId en = d.input("en", 1);
  NodeId a = m.mk_reg(8, 0, "a");
  NodeId b = m.mk_reg(8, 0, "b");
  NodeId one = d.constant(1, 1);
  m.add_rule("w", one,
             {{a, d.constant(8, 7), en},
              {b, d.constant(8, 3), kInvalidNode}});
  m.compile();
  Design design = m.take();
  design.output("a", a);
  design.output("b", b);
  sim::Simulator sim(design);
  sim.set_input("en", 0);
  sim.step();
  EXPECT_EQ(sim.output_i64("a"), 0);  // enable off: no write
  EXPECT_EQ(sim.output_i64("b"), 3);  // unconditional action committed
}

TEST(RuleFramework, ConflictFreeAttributeUnblocks) {
  RuleModule m("t");
  Design& d = m.design();
  NodeId sel = d.input("sel", 1);
  NodeId a = m.mk_reg(8, 0, "a");
  NodeId one = d.constant(1, 1);
  // Two rules write `a` under disjoint enables; without the attribute the
  // scheduler would serialize them.
  m.add_rule("w0", one, {{a, d.constant(8, 5), d.bnot(sel, 1)}});
  m.add_rule("w1", one, {{a, d.constant(8, 9), sel}});
  m.mark_conflict_free("w0", "w1");
  ScheduleInfo info = m.compile();
  EXPECT_EQ(info.conflict_pairs, 0);
  Design design = m.take();
  design.output("a", a);
  sim::Simulator sim(design);
  sim.set_input("sel", 1);
  sim.step();
  EXPECT_EQ(sim.output_i64("a"), 9);
  sim.set_input("sel", 0);
  sim.step();
  EXPECT_EQ(sim.output_i64("a"), 5);
}

TEST(RuleFramework, OneHotMuxStyleIsFunctionallyIdentical) {
  for (MuxStyle style : {MuxStyle::kPriorityChain, MuxStyle::kOneHotAndOr}) {
    RuleModule m("t");
    Design& d = m.design();
    NodeId go = d.input("go", 1);
    NodeId a = m.mk_reg(8, 0, "a");
    m.add_rule("inc", go, {{a, d.add(a, d.constant(8, 3), 8), kInvalidNode}});
    SchedulerOptions opt;
    opt.mux_style = style;
    m.compile(opt);
    Design design = m.take();
    design.output("a", a);
    sim::Simulator sim(design);
    sim.set_input("go", 1);
    sim.run(4);
    EXPECT_EQ(sim.output_i64("a"), 12);
  }
}

// ---- the designs --------------------------------------------------------------

struct BsvCase {
  const char* label;
  netlist::Design (*build)(const SchedulerOptions&);
  int latency;
  double periodicity;
};

class BsvFamily : public ::testing::TestWithParam<BsvCase> {};

TEST_P(BsvFamily, BitExactAgainstSoftwareModel) {
  // The BSV designs use 32-bit units (a C translation), so they wrap like
  // int32 and are exact even on uniform full-range coefficients.
  netlist::Design d = GetParam().build({});
  sim::Simulator sim(d);
  axis::StreamTestbench tb(sim);
  SplitMix64 rng(99);
  std::vector<idct::Block> ins;
  for (int i = 0; i < 8; ++i) ins.push_back(uniform_coeff_block(rng));
  auto out = tb.run(ins);
  ASSERT_EQ(out.size(), ins.size());
  for (size_t i = 0; i < ins.size(); ++i)
    EXPECT_EQ(out[i], software_idct(ins[i])) << "matrix " << i;
  EXPECT_TRUE(tb.monitor().clean());
}

TEST_P(BsvFamily, MeasuredCycleBehaviour) {
  netlist::Design d = GetParam().build({});
  sim::Simulator sim(d);
  axis::StreamTestbench tb(sim);
  SplitMix64 rng(100);
  std::vector<idct::Block> ins;
  for (int i = 0; i < 8; ++i) ins.push_back(uniform_coeff_block(rng));
  tb.run(ins);
  EXPECT_EQ(tb.timing().latency_cycles, GetParam().latency);
  EXPECT_DOUBLE_EQ(tb.timing().periodicity_cycles, GetParam().periodicity);
}

TEST_P(BsvFamily, BackpressureSafe) {
  netlist::Design d = GetParam().build({});
  sim::Simulator sim(d);
  axis::StreamTestbench tb(sim);
  tb.sink().set_backpressure(1, 3);
  SplitMix64 rng(101);
  std::vector<idct::Block> ins;
  for (int i = 0; i < 3; ++i) ins.push_back(uniform_coeff_block(rng));
  auto out = tb.run(ins);
  for (size_t i = 0; i < ins.size(); ++i)
    EXPECT_EQ(out[i], software_idct(ins[i]));
  EXPECT_TRUE(tb.monitor().clean());
}

INSTANTIATE_TEST_SUITE_P(
    AllDesigns, BsvFamily,
    ::testing::Values(BsvCase{"initial", &build_bsv_initial, 18, 10.0},
                      BsvCase{"opt", &build_bsv_opt, 24, 9.0}),
    [](const ::testing::TestParamInfo<BsvCase>& info) {
      return info.param.label;
    });

TEST(BsvSchedule, OptHasExactlyTheEmitColFinishConflict) {
  ScheduleInfo info = schedule_of_bsv_opt();
  EXPECT_EQ(info.conflict_pairs, 1);
  bool found = false;
  for (const auto& r : info.rules)
    if (r.name == "col_finish")
      for (const auto& c : r.conflicts_with)
        if (c == "emit") found = true;
  EXPECT_TRUE(found) << "the paper's scheduling bubble should come from "
                        "emit vs col_finish";
}

TEST(BsvSchedule, TheBubbleIsThePaperSignature) {
  // Paper: "the periodicity is one cycle higher (9 instead of 8)". Confirm
  // the bubble exists and is exactly one cycle in steady state.
  netlist::Design d = build_bsv_opt();
  sim::Simulator sim(d);
  axis::StreamTestbench tb(sim);
  SplitMix64 rng(102);
  std::vector<idct::Block> ins;
  for (int i = 0; i < 10; ++i) ins.push_back(uniform_coeff_block(rng));
  tb.run(ins);
  EXPECT_DOUBLE_EQ(tb.timing().periodicity_cycles, 9.0);
}

TEST(BsvOptions, SweepBarelyMovesQuality) {
  // The paper synthesized 26 BSV circuits and found the settings have "a
  // negligible impact on the performance and area".
  std::vector<SchedulerOptions> configs;
  for (UrgencyOrder u : {UrgencyOrder::kDeclaration, UrgencyOrder::kReversed,
                         UrgencyOrder::kConflictSorted})
    for (MuxStyle s : {MuxStyle::kPriorityChain, MuxStyle::kOneHotAndOr})
      for (bool ac : {false, true}) {
        SchedulerOptions o;
        o.urgency = u;
        o.mux_style = s;
        o.aggressive_conditions = ac;
        configs.push_back(o);
      }
  double min_q = 1e18, max_q = 0;
  for (const auto& o : configs) {
    auto ns = synth::synthesize_normalized(build_bsv_opt(o));
    double q = ns.normal.fmax_mhz / static_cast<double>(ns.area());
    min_q = std::min(min_q, q);
    max_q = std::max(max_q, q);
  }
  EXPECT_LT(max_q / min_q, 1.10);  // within 10% across the whole sweep
}

TEST(BsvOptions, AllConfigsStayFunctional) {
  SplitMix64 rng(103);
  idct::Block in = uniform_coeff_block(rng);
  idct::Block want = software_idct(in);
  for (UrgencyOrder u : {UrgencyOrder::kDeclaration, UrgencyOrder::kReversed,
                         UrgencyOrder::kConflictSorted}) {
    for (MuxStyle s : {MuxStyle::kPriorityChain, MuxStyle::kOneHotAndOr}) {
      SchedulerOptions o;
      o.urgency = u;
      o.mux_style = s;
      netlist::Design d = build_bsv_opt(o);
      sim::Simulator sim(d);
      axis::StreamTestbench tb(sim);
      auto out = tb.run({in});
      EXPECT_EQ(out[0], want);
    }
  }
}

TEST(BsvSchedule, ReversedUrgencyGatesTvalidByMethodReadiness) {
  // Regression: with reversed urgency col_finish outranks emit, so the
  // interface's TVALID must drop on the cycles the emit method cannot be
  // scheduled — otherwise the sink double-samples a beat (this was a real
  // bug caught by the Fig. 1 sweep).
  SchedulerOptions o;
  o.urgency = UrgencyOrder::kReversed;
  netlist::Design d = build_bsv_opt(o);
  sim::Simulator sim(d);
  axis::StreamTestbench tb(sim);
  SplitMix64 rng(104);
  std::vector<idct::Block> ins;
  for (int i = 0; i < 6; ++i) ins.push_back(uniform_coeff_block(rng));
  auto out = tb.run(ins);
  ASSERT_EQ(out.size(), ins.size());
  for (size_t i = 0; i < ins.size(); ++i)
    EXPECT_EQ(out[i], software_idct(ins[i]));
  EXPECT_TRUE(tb.monitor().clean());
}

}  // namespace
}  // namespace hlshc::bsv
