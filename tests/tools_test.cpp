// Tests for the tool registry: flow wiring, LOC accounting from the
// shipped sources, Table I content, and the Fig. 1 sweep cardinalities.
#include "tools/flows.hpp"

#include <gtest/gtest.h>

namespace hlshc::tools {
namespace {

TEST(Flows, SevenFlowsInPaperOrder) {
  auto flows = make_flows();
  ASSERT_EQ(flows.size(), 7u);
  EXPECT_EQ(flows[0]->info().tool, "Vivado");
  EXPECT_EQ(flows[1]->info().tool, "Chisel");
  EXPECT_EQ(flows[2]->info().tool, "BSC");
  EXPECT_EQ(flows[3]->info().tool, "XLS");
  EXPECT_EQ(flows[4]->info().tool, "MaxCompiler");
  EXPECT_EQ(flows[5]->info().tool, "Bambu");
  EXPECT_EQ(flows[6]->info().tool, "Vivado HLS");
}

TEST(Flows, TableOneListsTypesAndOpenness) {
  std::string t1 = render_table1();
  EXPECT_NE(t1.find("LS/PR"), std::string::npos);
  EXPECT_NE(t1.find("Open-source"), std::string::npos);
  EXPECT_NE(t1.find("Commercial"), std::string::npos);
  EXPECT_NE(t1.find("Rule-based/RTL"), std::string::npos);
}

TEST(Flows, VerilogFlowEvaluates) {
  auto flows = make_flows();
  FlowResult r = flows[0]->evaluate();
  EXPECT_TRUE(r.initial.functional);
  EXPECT_TRUE(r.optimized.functional);
  EXPECT_GT(r.loc.initial, 100);
  EXPECT_GT(r.loc.optimized, r.loc.initial);  // the opt design is longer
  EXPECT_GT(r.loc.delta, 50);                 // substantial rework
  EXPECT_GT(r.optimized.quality(), r.initial.quality());
}

TEST(Flows, SweepCardinalitiesMatchThePaper) {
  auto flows = make_flows();
  // The expensive sweeps are counted without evaluating: check the cheap
  // ones end-to-end and the per-family counts via full size expectations.
  // The paper-shaped points (Verilog 3, Chisel 2) gained scheduler-staged
  // kernel points at stages {2, 4, 8} in PR 10.
  EXPECT_EQ(flows[0]->sweep().size(), 6u);   // Verilog: 3 paper + 3 staged
  EXPECT_EQ(flows[1]->sweep().size(), 5u);   // Chisel: 2 paper + 3 staged
  EXPECT_EQ(flows[4]->sweep().size(), 2u);   // MaxJ
}

TEST(Flows, ChiselLocBeatsVerilog) {
  auto flows = make_flows();
  FlowResult v = flows[0]->evaluate();
  FlowResult c = flows[1]->evaluate();
  // The paper's central automation claim: the HC/HLS descriptions are
  // shorter than the Verilog baseline.
  EXPECT_LT(c.loc.initial, v.loc.initial);
  EXPECT_LT(c.loc.optimized, v.loc.optimized);
}

}  // namespace
}  // namespace hlshc::tools
