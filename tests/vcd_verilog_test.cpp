// Tests for the VCD tracer and the Verilog emitter on real designs.
#include <gtest/gtest.h>

#include "axis/testbench.hpp"
#include "netlist/verilog.hpp"
#include "rtl/designs.hpp"
#include "sim/simulator.hpp"
#include "sim/vcd.hpp"
#include "testutil.hpp"

namespace hlshc {
namespace {

TEST(Vcd, HeaderDeclaresAllPorts) {
  netlist::Design d = rtl::build_verilog_opt2();
  sim::Simulator sim(d);
  sim::VcdTrace trace = sim::VcdTrace::ports(sim);
  sim.eval();
  trace.sample();
  std::string vcd = trace.finish();
  EXPECT_NE(vcd.find("$timescale"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 1"), std::string::npos);
  EXPECT_NE(vcd.find("s_tvalid"), std::string::npos);
  EXPECT_NE(vcd.find("m_tdata7"), std::string::npos);
  EXPECT_NE(vcd.find("$enddefinitions $end"), std::string::npos);
}

TEST(Vcd, OnlyChangesAreDumped) {
  netlist::Design d("toggle");
  netlist::NodeId r = d.reg(1, 0, "r");
  d.set_reg_next(r, d.bnot(r, 1));
  netlist::NodeId steady = d.reg(4, 5, "s");
  d.set_reg_next(steady, steady);
  d.output("q", r);
  d.output("s", steady);

  sim::Simulator sim(d);
  sim::VcdTrace trace = sim::VcdTrace::ports(sim);
  for (int i = 0; i < 6; ++i) {
    sim.eval();
    trace.sample();
    sim.step();
  }
  std::string vcd = trace.finish();
  // The toggling bit changes every sample; the steady register appears
  // only in the first one.
  EXPECT_NE(vcd.find("#0"), std::string::npos);
  EXPECT_NE(vcd.find("#5"), std::string::npos);
  size_t first = vcd.find("b0101 ");
  EXPECT_NE(first, std::string::npos);
  EXPECT_EQ(vcd.find("b0101 ", first + 1), std::string::npos);
}

TEST(Vcd, SampleCountTracksCycles) {
  netlist::Design d = rtl::build_verilog_initial();
  sim::Simulator sim(d);
  sim::VcdTrace trace = sim::VcdTrace::ports(sim);
  for (int i = 0; i < 10; ++i) {
    sim.eval();
    trace.sample();
    sim.step();
  }
  EXPECT_EQ(trace.samples(), 10);
}

TEST(VerilogEmit, FullDesignRoundTripsStructure) {
  netlist::Design d = rtl::build_verilog_opt2();
  std::string v = netlist::emit_verilog(d);
  EXPECT_NE(v.find("module verilog_opt2"), std::string::npos);
  EXPECT_NE(v.find("input signed [11:0] s_tdata0"), std::string::npos);
  EXPECT_NE(v.find("output signed [8:0] m_tdata0"), std::string::npos);
  EXPECT_NE(v.find("always @(posedge clk)"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  // Both IDCT constants survive into the RTL.
  EXPECT_NE(v.find("'sd2276"), std::string::npos);  // W1 - W7
  EXPECT_NE(v.find("'sd565"), std::string::npos);
}

TEST(VerilogEmit, MemoriesBecomeRegArrays) {
  netlist::Design d("m");
  int mem = d.add_memory("buf", 16, 64);
  netlist::NodeId addr = d.input("addr", 6);
  netlist::NodeId data = d.input("data", 16);
  netlist::NodeId we = d.input("we", 1);
  d.mem_write(mem, addr, data, we);
  d.output("q", d.mem_read(mem, addr));
  std::string v = netlist::emit_verilog(d);
  EXPECT_NE(v.find("reg signed [15:0] mem_0 [0:63]"), std::string::npos);
  EXPECT_NE(v.find("mem_0[addr] <= data"), std::string::npos);
}

TEST(VerilogEmit, NegativeLiteralsWellFormed) {
  netlist::Design d("neg");
  netlist::NodeId a = d.input("a", 8);
  d.output("o", d.add(a, d.constant(8, -128), 9));
  std::string v = netlist::emit_verilog(d);
  EXPECT_NE(v.find("-8'sd128"), std::string::npos);
}

}  // namespace
}  // namespace hlshc
