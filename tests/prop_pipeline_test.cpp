// Property-based tests for the XLS-style pipeliner on *random* dataflow
// functions (not just the IDCT kernel): for any generated combinational
// function and any requested depth, the pipelined circuit must equal the
// combinational one on a streamed input sequence, shifted by exactly the
// reported latency — and the inserted registers must be the only
// difference.
#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "netlist/ir.hpp"
#include "sim/simulator.hpp"
#include "xls/pipeline.hpp"

namespace hlshc::xls {
namespace {

using netlist::Design;
using netlist::NodeId;

/// Random pure-dataflow function with 3 inputs and 2 outputs.
Design random_function(uint64_t seed) {
  SplitMix64 rng(seed);
  Design d("fn_" + std::to_string(seed));
  std::vector<NodeId> pool;
  for (int i = 0; i < 3; ++i)
    pool.push_back(d.input("in" + std::to_string(i),
                           6 + static_cast<int>(rng.next() % 11)));
  pool.push_back(d.constant(12, rng.next_in(-2048, 2047)));
  auto pick = [&]() {
    return pool[static_cast<size_t>(rng.next() % pool.size())];
  };
  for (int i = 0; i < 50; ++i) {
    NodeId a = pick(), b = pick();
    int w = 4 + static_cast<int>(rng.next() % 29);
    switch (rng.next() % 7) {
      case 0: pool.push_back(d.add(a, b, w)); break;
      case 1: pool.push_back(d.sub(a, b, w)); break;
      case 2: pool.push_back(d.mul(a, b, std::min(w + 12, 44))); break;
      case 3: pool.push_back(d.bxor(a, d.sext(b, d.node(a).width),
                                    d.node(a).width)); break;
      case 4: pool.push_back(d.mux(d.sge(a, b), d.sext(a, w),
                                   d.sext(b, w), w)); break;
      case 5: pool.push_back(d.shl(a, static_cast<int>(rng.next() % 4), w));
        break;
      default: pool.push_back(d.ashr(a, static_cast<int>(rng.next() % 4),
                                     d.node(a).width));
        break;
    }
  }
  d.output("out0", pool[pool.size() - 1]);
  d.output("out1", pool[pool.size() - 2]);
  return d;
}

struct Case {
  uint64_t seed;
  int stages;
};

class RandomPipeline : public ::testing::TestWithParam<Case> {};

TEST_P(RandomPipeline, StreamedEquivalenceAtReportedLatency) {
  Design fn = random_function(GetParam().seed);
  PipelineResult pr = pipeline_function(fn, GetParam().stages);
  ASSERT_GE(pr.latency, 1);
  ASSERT_LE(pr.latency, GetParam().stages);

  sim::Simulator comb(fn);
  sim::Simulator pipe(pr.design);
  SplitMix64 rng(GetParam().seed ^ 0x5a5a);

  const int kTicks = 24;
  std::vector<std::array<int64_t, 2>> expected;
  std::vector<std::array<int64_t, 2>> got;
  for (int t = 0; t < kTicks + pr.latency; ++t) {
    for (NodeId in : fn.inputs()) {
      const auto& n = fn.node(in);
      int64_t v = rng.next_in(-(1 << (n.width - 1)), (1 << (n.width - 1)) - 1);
      comb.set_input(n.name, v);
      pipe.set_input(n.name, v);
    }
    comb.eval();
    pipe.eval();
    if (t < kTicks)
      expected.push_back({comb.output_i64("out0"), comb.output_i64("out1")});
    if (t >= pr.latency)
      got.push_back({pipe.output_i64("out0"), pipe.output_i64("out1")});
    comb.step();
    pipe.step();
  }
  ASSERT_EQ(expected.size(), got.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i][0], got[i][0]) << "tick " << i;
    EXPECT_EQ(expected[i][1], got[i][1]) << "tick " << i;
  }
}

TEST_P(RandomPipeline, OnlyRegistersAreAdded) {
  Design fn = random_function(GetParam().seed);
  PipelineResult pr = pipeline_function(fn, GetParam().stages);
  netlist::DesignStats before = netlist::compute_stats(fn);
  netlist::DesignStats after = netlist::compute_stats(pr.design);
  EXPECT_EQ(after.adders, before.adders);
  EXPECT_EQ(after.multipliers + after.const_mults,
            before.multipliers + before.const_mults);
  EXPECT_EQ(after.muxes, before.muxes);
  EXPECT_EQ(after.reg_bits, pr.pipeline_regs);
  EXPECT_GT(after.regs, 0);
}

std::vector<Case> cases() {
  std::vector<Case> out;
  for (uint64_t seed : {201, 202, 203, 204, 205, 206})
    for (int stages : {1, 3, 7}) out.push_back({seed, stages});
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomPipeline, ::testing::ValuesIn(cases()),
                         [](const ::testing::TestParamInfo<Case>& info) {
                           return "s" + std::to_string(info.param.seed) +
                                  "_d" + std::to_string(info.param.stages);
                         });

}  // namespace
}  // namespace hlshc::xls
