// Unit tests for the BitVec fixed-width two's-complement value type.
#include "base/bitvec.hpp"

#include <gtest/gtest.h>

namespace hlshc {
namespace {

TEST(BitVec, ConstructionWrapsToWidth) {
  EXPECT_EQ(BitVec(4, 7).to_int64(), 7);
  EXPECT_EQ(BitVec(4, 8).to_int64(), -8);    // 1000 -> -8
  EXPECT_EQ(BitVec(4, -1).to_int64(), -1);
  EXPECT_EQ(BitVec(4, 16).to_int64(), 0);    // wraps
  EXPECT_EQ(BitVec(4, -9).to_int64(), 7);    // wraps
  EXPECT_EQ(BitVec(1, 1).to_int64(), -1);    // 1-bit: 1 == -1 signed
}

TEST(BitVec, UnsignedView) {
  EXPECT_EQ(BitVec(4, -1).to_uint64(), 15u);
  EXPECT_EQ(BitVec(12, -1).to_uint64(), 4095u);
  EXPECT_EQ(BitVec(64, -1).to_uint64(), ~uint64_t{0});
}

TEST(BitVec, BitIndexing) {
  BitVec v(8, 0b10110010);
  EXPECT_FALSE(v.bit(0));
  EXPECT_TRUE(v.bit(1));
  EXPECT_TRUE(v.bit(7));
  EXPECT_THROW(v.bit(8), Error);
}

TEST(BitVec, AddSubWrap) {
  EXPECT_EQ(BitVec::add(BitVec(8, 100), BitVec(8, 100), 8).to_int64(), -56);
  EXPECT_EQ(BitVec::add(BitVec(8, 100), BitVec(8, 100), 9).to_int64(), 200);
  EXPECT_EQ(BitVec::sub(BitVec(8, 0), BitVec(8, 1), 8).to_int64(), -1);
}

TEST(BitVec, MulAtFullAndTruncatedWidth) {
  EXPECT_EQ(BitVec::mul(BitVec(12, 2047), BitVec(13, 2841), 32).to_int64(),
            2047 * 2841);
  EXPECT_EQ(BitVec::mul(BitVec(12, -2048), BitVec(13, 2841), 32).to_int64(),
            -2048 * 2841);
  // Truncation keeps the low bits.
  EXPECT_EQ(BitVec::mul(BitVec(8, 16), BitVec(8, 16), 8).to_int64(), 0);
}

TEST(BitVec, Mul64BitDoesNotOverflowUB) {
  // 2^40 * 2^20 wraps cleanly at 64 bits through the __int128 path.
  BitVec a(64, int64_t{1} << 40);
  BitVec b(64, int64_t{1} << 20);
  EXPECT_EQ(BitVec::mul(a, b, 64).to_int64(), int64_t{1} << 60);
}

TEST(BitVec, Shifts) {
  EXPECT_EQ(BitVec::shl(BitVec(12, -3), 11, 24).to_int64(), -3 << 11);
  EXPECT_EQ(BitVec::ashr(BitVec(16, -256), 8, 16).to_int64(), -1);
  EXPECT_EQ(BitVec::ashr(BitVec(16, -255), 8, 16).to_int64(), -1);  // floors
  EXPECT_EQ(BitVec::lshr(BitVec(8, -1), 4, 8).to_int64(), 15);
  EXPECT_EQ(BitVec::ashr(BitVec(8, -1), 70, 8).to_int64(), -1);
  EXPECT_EQ(BitVec::lshr(BitVec(8, -1), 70, 8).to_int64(), 0);
}

TEST(BitVec, Bitwise) {
  EXPECT_EQ(BitVec::band(BitVec(8, 0xF0), BitVec(8, 0x3C), 8).to_uint64(),
            0x30u);
  EXPECT_EQ(BitVec::bor(BitVec(8, 0xF0), BitVec(8, 0x0C), 8).to_uint64(),
            0xFCu);
  EXPECT_EQ(BitVec::bxor(BitVec(8, 0xFF), BitVec(8, 0x0F), 8).to_uint64(),
            0xF0u);
  EXPECT_EQ(BitVec::bnot(BitVec(4, 0b1010), 4).to_uint64(), 0b0101u);
}

TEST(BitVec, Comparisons) {
  EXPECT_TRUE(BitVec::slt(BitVec(8, -5), BitVec(8, 3)).to_bool());
  EXPECT_FALSE(BitVec::ult(BitVec(8, -5), BitVec(8, 3)).to_bool());
  EXPECT_TRUE(BitVec::eq(BitVec(8, 42), BitVec(8, 42)).to_bool());
  EXPECT_TRUE(BitVec::sge(BitVec(8, 3), BitVec(8, 3)).to_bool());
  EXPECT_TRUE(BitVec::sgt(BitVec(8, 4), BitVec(8, 3)).to_bool());
  EXPECT_TRUE(BitVec::sle(BitVec(8, -4), BitVec(8, -4)).to_bool());
  EXPECT_TRUE(BitVec::ne(BitVec(8, 1), BitVec(8, 2)).to_bool());
}

TEST(BitVec, SliceConcat) {
  BitVec v(12, 0xABC);
  EXPECT_EQ(BitVec::slice(v, 11, 8).to_uint64(), 0xAu);
  EXPECT_EQ(BitVec::slice(v, 7, 4).to_uint64(), 0xBu);
  EXPECT_EQ(BitVec::slice(v, 3, 0).to_uint64(), 0xCu);
  BitVec joined = BitVec::concat(BitVec(4, 0xA), BitVec(8, 0xBC));
  EXPECT_EQ(joined.width(), 12);
  EXPECT_EQ(joined.to_uint64(), 0xABCu);
}

TEST(BitVec, Extensions) {
  EXPECT_EQ(BitVec::sext(BitVec(4, -3), 12).to_int64(), -3);
  EXPECT_EQ(BitVec::zext(BitVec(4, -3), 12).to_int64(), 13);
  // Extension to a narrower width truncates.
  EXPECT_EQ(BitVec::sext(BitVec(12, 0x7FF), 4).to_int64(), -1);
}

TEST(BitVec, Mux) {
  BitVec t(8, 11), f(8, 22);
  EXPECT_EQ(BitVec::mux(BitVec::bool_of(true), t, f, 8).to_int64(), 11);
  EXPECT_EQ(BitVec::mux(BitVec::bool_of(false), t, f, 8).to_int64(), 22);
}

TEST(BitVec, MinSignedWidth) {
  EXPECT_EQ(BitVec::min_signed_width(0), 1);
  EXPECT_EQ(BitVec::min_signed_width(-1), 1);
  EXPECT_EQ(BitVec::min_signed_width(1), 2);
  EXPECT_EQ(BitVec::min_signed_width(7), 4);
  EXPECT_EQ(BitVec::min_signed_width(-8), 4);
  EXPECT_EQ(BitVec::min_signed_width(8), 5);
  EXPECT_EQ(BitVec::min_signed_width(2841), 13);
  EXPECT_EQ(BitVec::min_signed_width(2047), 12);
  EXPECT_EQ(BitVec::min_signed_width(-2048), 12);
}

TEST(BitVec, WidthRangeChecked) {
  EXPECT_THROW(BitVec(0, 0), Error);
  EXPECT_THROW(BitVec(65, 0), Error);
  EXPECT_NO_THROW(BitVec(64, -1));
}

TEST(BitVec, Strings) {
  EXPECT_EQ(BitVec(4, 5).to_binary_string(), "0101");
  EXPECT_EQ(BitVec(4, -1).to_binary_string(), "1111");
  EXPECT_EQ(BitVec(8, -2).to_string(), "8'd-2");
}

}  // namespace
}  // namespace hlshc
