// Coverage for the remaining public surfaces: timing-path description,
// MaxJ evaluation conversion, custom VCD signal sets, tool labels, and
// small helpers that the larger suites exercise only incidentally.
#include <gtest/gtest.h>

#include "core/evaluate.hpp"
#include "hls/tool.hpp"
#include "maxj/kernels.hpp"
#include "maxj/system.hpp"
#include "netlist/dump.hpp"
#include "rtl/designs.hpp"
#include "sim/simulator.hpp"
#include "sim/vcd.hpp"
#include "synth/synthesize.hpp"

namespace hlshc {
namespace {

TEST(TimingPath, DescriptionNamesTheOperators) {
  auto rep = synth::synthesize(rtl::build_verilog_opt2());
  EXPECT_FALSE(rep.critical_path.empty());
  EXPECT_NE(rep.critical_path.find("->"), std::string::npos);
  // The path of the optimized design starts at a register.
  EXPECT_NE(rep.critical_path.find("reg<"), std::string::npos);
  EXPECT_GT(rep.critical_path_ns, 0.0);
  EXPECT_LT(rep.critical_path_ns, rep.min_period_ns);
}

TEST(TimingPath, UtilizationAgainstDevice) {
  synth::Device dev = synth::xcvu9p();
  auto rep = synth::synthesize(rtl::build_verilog_initial());
  EXPECT_GT(rep.lut_util(dev), 0.0);
  EXPECT_LT(rep.lut_util(dev), 5.0);  // the paper: tiny benchmark, big chip
  EXPECT_LT(rep.ff_util(dev), 1.0);
}

TEST(MaxjConversion, FromMaxjFillsEveryField) {
  maxj::Kernel k = maxj::build_row_kernel();
  maxj::SystemEvaluation ev =
      maxj::evaluate_system(k, synth::synthesize_normalized(k.design));
  core::DesignEvaluation d = core::from_maxj("probe", k, ev);
  EXPECT_EQ(d.name, "probe");
  EXPECT_TRUE(d.functional);
  EXPECT_DOUBLE_EQ(d.periodicity_cycles, 9.0);
  EXPECT_GT(d.throughput_mops, 0.0);
  EXPECT_EQ(d.area, d.n_lut_star + d.n_ff_star);
  EXPECT_GT(d.quality(), 0.0);
}

TEST(Vcd, CustomSignalSubset) {
  netlist::Design d = rtl::build_verilog_opt2();
  sim::Simulator sim(d);
  netlist::NodeId valid = d.find_output("m_tvalid");
  ASSERT_NE(valid, netlist::kInvalidNode);
  sim::VcdTrace trace(sim, {{"valid", valid}});
  sim.eval();
  trace.sample();
  std::string vcd = trace.finish();
  EXPECT_NE(vcd.find("$var wire 1 ! valid $end"), std::string::npos);
  // Exactly one declared signal.
  size_t count = 0, pos = 0;
  while ((pos = vcd.find("$var", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, 1u);
}

TEST(ToolLabels, BambuAndVhlsAreDescriptive) {
  hls::BambuOptions b;
  b.preset = hls::BambuPreset::kPerformanceMp;
  b.speculative_sdc = true;
  b.memory_policy = hls::MemoryAllocationPolicy::kGss;
  EXPECT_EQ(b.label(), "BAMBU-PERFORMANCE-MP+sdc+GSS");
  hls::VhlsOptions v;
  EXPECT_EQ(v.label(), "vhls-pushbutton");
  v.pragmas = true;
  v.pipeline_stages = 2;
  EXPECT_EQ(v.label(), "vhls+pragmas(stages=2)");
}

TEST(EvaluateOptions, UniformInputsWorkFor32BitFamilies) {
  core::EvaluateOptions o;
  o.realistic_inputs = false;  // uniform 12-bit coefficients
  o.matrices = 3;
  core::DesignEvaluation ev =
      core::evaluate_axis_design(rtl::build_verilog_opt2(), o);
  EXPECT_TRUE(ev.functional);  // 32-bit designs wrap exactly like the model
}

TEST(Dump, SummarizeCountsTheRightThings) {
  netlist::Design d = rtl::build_verilog_opt2();
  std::string s = netlist::summarize(d);
  EXPECT_NE(s.find("verilog_opt2"), std::string::npos);
  EXPECT_NE(s.find("regs"), std::string::npos);
  netlist::DesignStats st = netlist::compute_stats(d);
  // Two butterfly units: 22 constant multipliers.
  EXPECT_EQ(st.const_mults, 22);
  EXPECT_EQ(st.multipliers, 0);
  // Ping-pong row (2x64x20) + out (2x64x9) + control bits.
  EXPECT_GT(st.reg_bits, 3600);
  EXPECT_LT(st.reg_bits, 3800);
}

}  // namespace
}  // namespace hlshc
