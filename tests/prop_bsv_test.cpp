// Property-based tests of the rule scheduler's semantics on *random* rule
// systems: the defining guarantee of Bluespec is that concurrent rule
// firing is equivalent to executing the fired rules one at a time. Because
// the scheduler only lets conflict-free (disjoint-write) rules fire
// together, and every rule reads pre-state, the hardware's one-cycle step
// must equal a software interpreter applying the fired rules sequentially
// in any order. These tests check exactly that, plus urgency-order
// invariants, across random modules and inputs.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "base/rng.hpp"
#include "bsv/rules.hpp"
#include "sim/simulator.hpp"

namespace hlshc::bsv {
namespace {

using netlist::Design;
using netlist::kInvalidNode;
using netlist::NodeId;

struct RandomModule {
  RuleModule module{"rand"};
  std::vector<NodeId> regs;
  std::vector<NodeId> rule_guards;        // raw guard nodes
  std::vector<std::vector<std::pair<size_t, NodeId>>> rule_writes;
  ScheduleInfo info;
};

/// Builds a random rule system: R registers, K rules, each with a guard
/// over register comparisons and 1..3 register updates (arithmetic over
/// the pre-state).
RandomModule build_random(uint64_t seed, const SchedulerOptions& options) {
  SplitMix64 rng(seed);
  RandomModule rm;
  RuleModule& m = rm.module;
  Design& d = m.design();

  const int R = 4 + static_cast<int>(rng.next() % 3);
  for (int i = 0; i < R; ++i)
    rm.regs.push_back(
        m.mk_reg(8, static_cast<int64_t>(rng.next_in(-20, 20)),
                 "r" + std::to_string(i)));

  auto reg = [&]() {
    return rm.regs[static_cast<size_t>(rng.next() %
                                       rm.regs.size())];
  };

  const int K = 3 + static_cast<int>(rng.next() % 4);
  for (int k = 0; k < K; ++k) {
    // Guard: a comparison between a register and a small constant (or
    // always-true).
    NodeId guard;
    if (rng.next() % 4 == 0) {
      guard = d.constant(1, 1);
    } else {
      guard = d.sgt(reg(), d.constant(8, rng.next_in(-10, 10)));
    }
    std::vector<RuleAction> acts;
    std::vector<std::pair<size_t, NodeId>> writes;
    std::set<size_t> used;
    int n_writes = 1 + static_cast<int>(rng.next() % 3);
    for (int w = 0; w < n_writes; ++w) {
      size_t target = static_cast<size_t>(rng.next() % rm.regs.size());
      if (!used.insert(target).second) continue;  // one write per reg per rule
      NodeId value;
      switch (rng.next() % 3) {
        case 0:
          value = d.add(reg(), d.constant(8, rng.next_in(-5, 5)), 8);
          break;
        case 1: value = d.sub(reg(), reg(), 8); break;
        default: value = d.constant(8, rng.next_in(-100, 100)); break;
      }
      acts.push_back({rm.regs[target], value, kInvalidNode});
      writes.emplace_back(target, value);
    }
    m.add_rule("rule" + std::to_string(k), guard, std::move(acts));
    rm.rule_guards.push_back(guard);
    rm.rule_writes.push_back(std::move(writes));
  }
  rm.info = m.compile(options);
  return rm;
}

class RandomRules : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomRules, FiredSetsHaveDisjointWriteSets) {
  RandomModule rm = build_random(GetParam(), {});
  Design d = rm.module.take();
  for (size_t i = 0; i < rm.regs.size(); ++i)
    d.output("q" + std::to_string(i), rm.regs[i]);
  sim::Simulator sim(d);
  for (int cycle = 0; cycle < 30; ++cycle) {
    sim.eval();
    // Collect the WILL_FIRE rules and assert disjointness of their writes.
    std::map<size_t, int> writers;
    for (size_t k = 0; k < rm.info.rules.size(); ++k) {
      if (!sim.value(rm.info.rules[k].will_fire).to_bool()) continue;
      for (auto& [target, value] : rm.rule_writes[k]) ++writers[target];
    }
    for (auto& [target, n] : writers)
      EXPECT_LE(n, 1) << "register " << target << " written by " << n
                      << " concurrently fired rules (cycle " << cycle << ')';
    sim.step();
  }
}

TEST_P(RandomRules, OneCycleEqualsSequentialRuleExecution) {
  RandomModule rm = build_random(GetParam(), {});
  Design d = rm.module.take();
  for (size_t i = 0; i < rm.regs.size(); ++i)
    d.output("q" + std::to_string(i), rm.regs[i]);
  sim::Simulator sim(d);

  for (int cycle = 0; cycle < 25; ++cycle) {
    sim.eval();
    // Software model: apply fired rules' writes against the PRE-state.
    std::vector<int64_t> pre, post;
    for (size_t i = 0; i < rm.regs.size(); ++i)
      pre.push_back(sim.value(rm.regs[i]).to_int64());
    post = pre;
    for (size_t k = 0; k < rm.info.rules.size(); ++k) {
      if (!sim.value(rm.info.rules[k].will_fire).to_bool()) continue;
      for (auto& [target, value] : rm.rule_writes[k])
        post[target] = sim.value(value).to_int64();
    }
    sim.step();
    for (size_t i = 0; i < rm.regs.size(); ++i)
      EXPECT_EQ(sim.value(rm.regs[i]).to_int64(), post[i])
          << "register " << i << " cycle " << cycle;
  }
}

TEST_P(RandomRules, MostUrgentEnabledConflictorAlwaysFires) {
  SchedulerOptions o;
  RandomModule rm = build_random(GetParam(), o);
  Design d = rm.module.take();
  for (size_t i = 0; i < rm.regs.size(); ++i)
    d.output("q" + std::to_string(i), rm.regs[i]);
  sim::Simulator sim(d);
  for (int cycle = 0; cycle < 20; ++cycle) {
    sim.eval();
    // A rule whose guard holds may only be blocked if some more-urgent
    // conflictor fired; and a guard-true rule with no firing blockers
    // MUST fire.
    for (size_t k = 0; k < rm.info.rules.size(); ++k) {
      bool guard = sim.value(rm.rule_guards[k]).to_bool();
      bool fired = sim.value(rm.info.rules[k].will_fire).to_bool();
      if (!guard) {
        EXPECT_FALSE(fired);
        continue;
      }
      bool blocked = false;
      for (const std::string& bname : rm.info.rules[k].conflicts_with)
        for (const auto& b : rm.info.rules)
          if (b.name == bname && sim.value(b.will_fire).to_bool())
            blocked = true;
      EXPECT_EQ(fired, !blocked) << rm.info.rules[k].name;
    }
    sim.step();
  }
}

TEST_P(RandomRules, MuxStylesAgreeCycleByCycle) {
  SchedulerOptions prio, onehot;
  onehot.mux_style = MuxStyle::kOneHotAndOr;
  RandomModule a = build_random(GetParam(), prio);
  RandomModule b = build_random(GetParam(), onehot);
  Design da = a.module.take();
  Design db = b.module.take();
  for (size_t i = 0; i < a.regs.size(); ++i) {
    da.output("q" + std::to_string(i), a.regs[i]);
    db.output("q" + std::to_string(i), b.regs[i]);
  }
  sim::Simulator sa(da), sb(db);
  for (int cycle = 0; cycle < 30; ++cycle) {
    sa.step();
    sb.step();
    for (size_t i = 0; i < a.regs.size(); ++i)
      EXPECT_EQ(sa.output_i64("q" + std::to_string(i)),
                sb.output_i64("q" + std::to_string(i)))
          << "cycle " << cycle;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomRules,
                         ::testing::Range<uint64_t>(500, 520));

}  // namespace
}  // namespace hlshc::bsv
