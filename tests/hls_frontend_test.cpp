// Robustness tests for the HLS frontend: malformed input must produce
// diagnostics (never crashes or silent misparses), and the language subset
// boundaries are enforced with clear errors. Includes a small fuzz loop
// over mutated variants of the real source.
#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "hls/ast.hpp"
#include "hls/dfg.hpp"
#include "hls/lexer.hpp"
#include "hls/tool.hpp"

namespace hlshc::hls {
namespace {

TEST(Frontend, UnterminatedCommentDiagnosed) {
  EXPECT_THROW(lex("int x; /* never closed"), Error);
}

TEST(Frontend, UnsupportedPreprocessorDiagnosed) {
  EXPECT_THROW(lex("#include <stdio.h>\n"), Error);
  EXPECT_THROW(lex("#define F(x) x\n"), Error);  // function-like macros
}

TEST(Frontend, DefineChainsResolve) {
  auto toks = lex("#define A 7\n#define B A\nint x = B;");
  bool found = false;
  for (const auto& t : toks)
    if (t.kind == Tok::kNumber && t.value == 7) found = true;
  EXPECT_TRUE(found);
}

TEST(Frontend, MissingSemicolonDiagnosed) {
  EXPECT_THROW(parse("void f(int a) { a = 1 }"), Error);
}

TEST(Frontend, UnbalancedBracesDiagnosed) {
  EXPECT_THROW(parse("void f(int a) { if (a) { a = 1; }"), Error);
}

TEST(Frontend, UnknownVariableDiagnosedAtLowering) {
  Program p = parse("void f(short b[64]) { b[0] = (short)zzz; }");
  EXPECT_THROW(lower(p, "f"), Error);
}

TEST(Frontend, UnknownFunctionDiagnosed) {
  Program p = parse("void f(short b[64]) { g(b, 0); }");
  EXPECT_THROW(lower(p, "f"), Error);
}

TEST(Frontend, OutOfBoundsIndexDiagnosed) {
  Program p = parse("void f(short b[64]) { b[64] = 0; }");
  EXPECT_THROW(lower(p, "f"), Error);
}

TEST(Frontend, NonConstantBoundDiagnosed) {
  Program p = parse(
      "void f(short b[64], int n) {\n"
      "  int i;\n"
      "  for (i = 0; i < n; i++) { b[0] = 0; }\n"
      "}");
  // The top must take exactly one array param; call through a wrapper.
  Program p2 = parse(
      "static void g(short b[64], int n) {\n"
      "  int i;\n"
      "  for (i = 0; i < n; i++) { b[0] = 0; }\n"
      "}\n"
      "void f(short b[64]) { g(b, b[0]); }");
  EXPECT_THROW(lower(p2, "f"), Error);
  (void)p;
}

TEST(Frontend, DataDependentIfDiagnosed) {
  Program p = parse(
      "void f(short b[64]) { if (b[0] > 0) { b[1] = 1; } }");
  EXPECT_THROW(lower(p, "f"), Error);
}

TEST(Frontend, UnrollGuardStopsRunawayLoops) {
  Program p = parse(
      "void f(short b[64]) {\n"
      "  int i;\n"
      "  for (i = 0; i < 100000; i++) { b[0] = 0; }\n"
      "}");
  LowerOptions lo;
  lo.max_loop_iterations = 64;
  EXPECT_THROW(lower(p, "f", lo), Error);
}

TEST(Frontend, FuzzedSourcesNeverCrash) {
  // Mutate the real source by deleting/duplicating random spans; every
  // outcome must be either a successful parse or an hlshc::Error.
  const std::string src = idct_source();
  SplitMix64 rng(2026);
  int parsed = 0, rejected = 0;
  for (int iter = 0; iter < 200; ++iter) {
    std::string mutated = src;
    int edits = 1 + static_cast<int>(rng.next() % 3);
    for (int e = 0; e < edits; ++e) {
      size_t pos = static_cast<size_t>(rng.next() %
                                       static_cast<uint64_t>(mutated.size()));
      size_t len = 1 + static_cast<size_t>(rng.next() % 40);
      len = std::min(len, mutated.size() - pos);
      if (rng.next() & 1)
        mutated.erase(pos, len);
      else
        mutated.insert(pos, mutated.substr(pos, len));
    }
    try {
      Program p = parse(mutated);
      ++parsed;
    } catch (const Error&) {
      ++rejected;
    }
    // Any other exception type (or a crash) fails the test by itself.
  }
  EXPECT_EQ(parsed + rejected, 200);
  EXPECT_GT(rejected, 50);  // most mutations should be rejected
}

TEST(Frontend, IclipSemantics) {
  // The ternary-based helper function lowers to selects, end to end.
  Program p = parse(
      "static int iclip(int x) {\n"
      "  return x < -256 ? -256 : (x > 255 ? 255 : x);\n"
      "}\n"
      "void f(short b[64]) { b[0] = (short)iclip(b[1] * 3); }");
  Dfg dfg = lower(p, "f");
  std::vector<int32_t> mem(64, 0);
  mem[1] = 2000;
  interpret(dfg, mem);
  EXPECT_EQ(mem[0], 255);
  std::fill(mem.begin(), mem.end(), 0);
  mem[1] = -2000;
  interpret(dfg, mem);
  EXPECT_EQ(mem[0], -256);
  std::fill(mem.begin(), mem.end(), 0);
  mem[1] = 10;
  interpret(dfg, mem);
  EXPECT_EQ(mem[0], 30);
}

}  // namespace
}  // namespace hlshc::hls
