// Tests for the composition framework: the generated interfaces must make
// ANY conforming kernel pair a correct AXI-Stream design — including
// kernels originating from different flows (the paper's future-work
// scenario), at several pipeline depths.
#include "framework/compose.hpp"

#include <gtest/gtest.h>

#include "axis/testbench.hpp"
#include "base/rng.hpp"
#include "chisel/designs.hpp"
#include "hls/ast.hpp"
#include "hls/tool.hpp"
#include "idct/chenwang.hpp"
#include "rtl/units.hpp"
#include "sim/simulator.hpp"
#include "testutil.hpp"
#include "xls/designs.hpp"
#include "xls/pipeline.hpp"

namespace hlshc::framework {
namespace {

using testutil::realistic_coeff_block;
using testutil::software_idct;

void check_design(netlist::Design& d, uint64_t seed, int matrices = 5,
                  bool backpressure = false) {
  sim::Simulator sim(d);
  axis::StreamTestbench tb(sim);
  if (backpressure) tb.sink().set_backpressure(2, 5);
  SplitMix64 rng(seed);
  std::vector<idct::Block> ins;
  for (int i = 0; i < matrices; ++i)
    ins.push_back(realistic_coeff_block(rng));
  auto out = tb.run(ins);
  ASSERT_EQ(out.size(), ins.size());
  for (size_t i = 0; i < ins.size(); ++i)
    EXPECT_EQ(out[i], software_idct(ins[i])) << d.name() << " matrix " << i;
  EXPECT_TRUE(tb.monitor().clean()) << d.name();
}

class MatrixWrapDepths : public ::testing::TestWithParam<int> {};

TEST_P(MatrixWrapDepths, AnyLatencyKernelStreamsCorrectly) {
  auto pr = xls::pipeline_function(xls::build_idct_kernel(), GetParam());
  netlist::Design d = wrap_matrix_kernel(MatrixKernel{pr.design, pr.latency},
                                         "wrap_l" + std::to_string(pr.latency));
  check_design(d, 11 + static_cast<uint64_t>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Depths, MatrixWrapDepths,
                         ::testing::Values(0, 1, 2, 5, 10));

TEST(ComposeRowCol, ChiselRowWithChiselCol) {
  netlist::Design row = chisel::build_row_pass_kernel();
  netlist::Design col = chisel::build_col_pass_kernel(16);
  netlist::Design d = compose_row_col(PassKernel{row, 0}, PassKernel{col, 0},
                                      16, "chisel_chisel");
  check_design(d, 21);
}

TEST(ComposeRowCol, HlsRowWithChiselCol) {
  // The headline mix: a C-compiled row pass + an eDSL column pass.
  hls::Program prog = hls::parse(hls::idct_source());
  auto row_leaf = hls::lower_leaf(prog, "idctrow", 0);
  auto row = xls::pipeline_function(
      hls::leaf_to_netlist(row_leaf, "hls_row", axis::kInElemWidth), 1);
  netlist::Design col = chisel::build_col_pass_kernel(16);
  netlist::Design d =
      compose_row_col(PassKernel{row.design, row.latency},
                      PassKernel{col, 0}, 16, "hls_chisel");
  check_design(d, 22);
  check_design(d, 23, 4, /*backpressure=*/true);
}

TEST(ComposeRowCol, PipelineDepthSweepsStayCorrect) {
  hls::Program prog = hls::parse(hls::idct_source());
  auto row_leaf = hls::lower_leaf(prog, "idctrow", 0);
  auto col_leaf = hls::lower_leaf(prog, "idctcol", 0);
  for (int stages : {1, 2, 3}) {
    auto row = xls::pipeline_function(
        hls::leaf_to_netlist(row_leaf, "r", axis::kInElemWidth), stages);
    auto col = xls::pipeline_function(
        hls::leaf_to_netlist(col_leaf, "c", 16), stages);
    netlist::Design d = compose_row_col(
        PassKernel{row.design, row.latency},
        PassKernel{col.design, col.latency}, 16,
        "sweep_s" + std::to_string(stages));
    check_design(d, 30 + static_cast<uint64_t>(stages), 4);
  }
}

TEST(ComposeRowCol, LatencyFollowsKernelDepths) {
  // T_L = 8 (rows in) + Lr + 8 (columns) + Lc + 8 (rows out).
  hls::Program prog = hls::parse(hls::idct_source());
  auto row_leaf = hls::lower_leaf(prog, "idctrow", 0);
  auto col_leaf = hls::lower_leaf(prog, "idctcol", 0);
  for (int stages : {1, 2}) {
    auto row = xls::pipeline_function(
        hls::leaf_to_netlist(row_leaf, "r", axis::kInElemWidth), stages);
    auto col = xls::pipeline_function(
        hls::leaf_to_netlist(col_leaf, "c", 16), stages);
    netlist::Design d = compose_row_col(
        PassKernel{row.design, row.latency},
        PassKernel{col.design, col.latency}, 16, "lat");
    sim::Simulator sim(d);
    axis::StreamTestbench tb(sim);
    SplitMix64 rng(77);
    std::vector<idct::Block> ins = {realistic_coeff_block(rng)};
    tb.run(ins);
    EXPECT_EQ(tb.timing().latency_cycles, 24 + row.latency + col.latency);
  }
}

TEST(WrapMatrixKernel, RejectsNothingButMeasuresLatency) {
  auto pr = xls::pipeline_function(xls::build_idct_kernel(), 3);
  netlist::Design d =
      wrap_matrix_kernel(MatrixKernel{pr.design, pr.latency}, "probe");
  sim::Simulator sim(d);
  axis::StreamTestbench tb(sim);
  SplitMix64 rng(5);
  std::vector<idct::Block> ins = {realistic_coeff_block(rng)};
  tb.run(ins);
  // T_L = 8 in + 1 launch + L + 8 out.
  EXPECT_EQ(tb.timing().latency_cycles, 17 + pr.latency);
}

}  // namespace
}  // namespace hlshc::framework
