// Error-path coverage: every public API that validates its inputs must
// reject bad usage with hlshc::Error (not UB, not silent misbehaviour).
#include <gtest/gtest.h>

#include "fault/harden.hpp"
#include "fault/model.hpp"
#include "framework/compose.hpp"
#include "netlist/instantiate.hpp"
#include "netlist/ir.hpp"
#include "sim/simulator.hpp"
#include "sim/vcd.hpp"
#include "synth/csd.hpp"

namespace hlshc {
namespace {

using netlist::Design;
using netlist::NodeId;

/// Toy DUT shared by the watchdog and fault-site error tests: an 8-bit
/// free-running counter with a 4-word scratch memory.
Design counter_with_mem() {
  Design d("counter");
  NodeId r = d.reg(8, 0, "cnt");
  d.set_reg_next(r, d.add(r, d.constant(8, 1), 8));
  d.output("q", r);
  int mem = d.add_memory("scratch", 8, 4);
  NodeId addr = d.slice(r, 1, 0);
  d.mem_write(mem, addr, r, d.constant(1, 1));
  d.output("m", d.mem_read(mem, addr));
  return d;
}

TEST(ErrorPaths, InstantiateMissingBindingThrows) {
  Design sub("sub");
  NodeId a = sub.input("a", 8);
  sub.output("o", a);
  Design host("host");
  EXPECT_THROW(netlist::instantiate(host, sub, {}), Error);
}

TEST(ErrorPaths, InstantiateWidthMismatchThrows) {
  Design sub("sub");
  NodeId a = sub.input("a", 8);
  sub.output("o", a);
  Design host("host");
  NodeId narrow = host.input("x", 4);
  EXPECT_THROW(netlist::instantiate(host, sub, {{"a", narrow}}), Error);
}

TEST(ErrorPaths, RegisterDoubleNextThrows) {
  Design d("d");
  NodeId r = d.reg(4, 0, "r");
  NodeId c = d.constant(4, 1);
  d.set_reg_next(r, c);
  EXPECT_THROW(d.set_reg_next(r, c), Error);
}

TEST(ErrorPaths, RegisterEnableMustBeOneBit) {
  Design d("d");
  NodeId r = d.reg(4, 0, "r");
  NodeId c = d.constant(4, 1);
  NodeId wide = d.constant(4, 1);
  EXPECT_THROW(d.set_reg_next(r, c, wide), Error);
}

TEST(ErrorPaths, MemoryBadShapeThrows) {
  Design d("d");
  EXPECT_THROW(d.add_memory("m", 0, 16), Error);
  EXPECT_THROW(d.add_memory("m", 8, 0), Error);
}

TEST(ErrorPaths, MemWriteEnableMustBeOneBit) {
  Design d("d");
  int mem = d.add_memory("m", 8, 4);
  NodeId a = d.input("a", 2);
  NodeId v = d.input("v", 8);
  EXPECT_THROW(d.mem_write(mem, a, v, v), Error);
}

TEST(ErrorPaths, SimulatorRejectsInvalidDesign) {
  Design d("d");
  d.reg(4, 0, "dangling");  // no next-value
  EXPECT_THROW(sim::Simulator{d}, Error);
}

TEST(ErrorPaths, VcdWithNoSignalsThrows) {
  Design d("d");
  NodeId a = d.input("a", 4);
  d.output("o", a);
  sim::Simulator sim(d);
  EXPECT_THROW(sim::VcdTrace(sim, {}), Error);
}

TEST(ErrorPaths, ComposeRejectsBadStoreWidth) {
  Design row("row");
  for (int i = 0; i < 8; ++i) {
    NodeId x = row.input("i" + std::to_string(i), 12);
    row.output("o" + std::to_string(i), row.sext(x, 32));
  }
  Design col = row;  // same shape is fine for the check under test
  EXPECT_THROW(framework::compose_row_col(framework::PassKernel{row, 0},
                                          framework::PassKernel{col, 0}, 8,
                                          "bad"),
               Error);
  EXPECT_THROW(framework::compose_row_col(framework::PassKernel{row, 0},
                                          framework::PassKernel{col, 0}, 40,
                                          "bad"),
               Error);
}

TEST(ErrorPaths, BitVecSliceAndConcatBounds) {
  BitVec v(8, 0x5A);
  EXPECT_THROW(BitVec::slice(v, 8, 0), Error);
  EXPECT_THROW(BitVec::concat(BitVec(40, 1), BitVec(40, 1)), Error);
}

TEST(ErrorPaths, RunRejectsNegativeCycleCount) {
  Design d = counter_with_mem();
  sim::Simulator sim(d);
  EXPECT_THROW(sim.run(-1), Error);
  sim.run(0);  // a no-op, not an error
  EXPECT_EQ(sim.cycle(), 0u);
}

TEST(ErrorPaths, WatchdogBudgetThrowsSimTimeout) {
  Design d = counter_with_mem();
  sim::Simulator sim(d);
  sim.set_cycle_budget(5);
  EXPECT_THROW(sim.run(10), sim::SimTimeout);
  EXPECT_EQ(sim.cycle(), 5u);  // stopped at the budget, not past it
  try {
    sim.step();
    FAIL() << "expected SimTimeout";
  } catch (const sim::SimTimeout& e) {
    EXPECT_EQ(e.cycles(), 5u);  // the exception carries the spent budget
  }
  sim.set_cycle_budget(0);  // disarm
  sim.run(10);
  EXPECT_EQ(sim.cycle(), 15u);
}

TEST(ErrorPaths, SimTimeoutIsAnError) {
  // Callers that only catch hlshc::Error must still see the watchdog.
  Design d = counter_with_mem();
  sim::Simulator sim(d);
  sim.set_cycle_budget(1);
  EXPECT_THROW(sim.run(2), Error);
}

TEST(ErrorPaths, FlipRegBitValidatesTarget) {
  Design d = counter_with_mem();
  sim::Simulator sim(d);
  EXPECT_THROW(sim.flip_reg_bit(d.find_output("q"), 0), Error);  // not a Reg
  NodeId r = netlist::kInvalidNode;
  for (size_t i = 0; i < d.node_count(); ++i)
    if (d.node(static_cast<NodeId>(i)).op == netlist::Op::Reg)
      r = static_cast<NodeId>(i);
  ASSERT_NE(r, netlist::kInvalidNode);
  EXPECT_THROW(sim.flip_reg_bit(r, 8), Error);   // bit past width
  EXPECT_THROW(sim.flip_reg_bit(r, -1), Error);  // negative bit
}

TEST(ErrorPaths, FlipMemBitValidatesTarget) {
  Design d = counter_with_mem();
  sim::Simulator sim(d);
  EXPECT_THROW(sim.flip_mem_bit(1, 0, 0), Error);   // no such memory
  EXPECT_THROW(sim.flip_mem_bit(0, 4, 0), Error);   // address past depth
  EXPECT_THROW(sim.flip_mem_bit(0, 0, 8), Error);   // bit past word width
  EXPECT_THROW(sim.flip_mem_bit(0, 0, -1), Error);  // negative bit
}

TEST(ErrorPaths, ValidateSiteRejectsBadFaultSites) {
  Design d = counter_with_mem();
  using fault::FaultKind;
  using fault::FaultSite;
  // SEU target must be a register.
  EXPECT_THROW(
      fault::validate_site(d, {FaultKind::kSeuReg, d.find_output("q")}),
      Error);
  NodeId r = netlist::kInvalidNode;
  NodeId mem_write = netlist::kInvalidNode;
  for (size_t i = 0; i < d.node_count(); ++i) {
    if (d.node(static_cast<NodeId>(i)).op == netlist::Op::Reg)
      r = static_cast<NodeId>(i);
    if (d.node(static_cast<NodeId>(i)).op == netlist::Op::MemWrite)
      mem_write = static_cast<NodeId>(i);
  }
  ASSERT_NE(r, netlist::kInvalidNode);
  ASSERT_NE(mem_write, netlist::kInvalidNode);
  // Bit index must fit the target's width.
  EXPECT_THROW(fault::validate_site(d, {FaultKind::kSeuReg, r, -1, 0, 8}),
               Error);
  // Memory id and address must exist; the bit must fit the word.
  EXPECT_THROW(fault::validate_site(
                   d, {FaultKind::kSeuMem, netlist::kInvalidNode, 1, 0, 0}),
               Error);
  EXPECT_THROW(fault::validate_site(
                   d, {FaultKind::kSeuMem, netlist::kInvalidNode, 0, 4, 0}),
               Error);
  EXPECT_THROW(fault::validate_site(
                   d, {FaultKind::kSeuMem, netlist::kInvalidNode, 0, 0, 8}),
               Error);
  // Stuck-at / transient probes on MemWrite sinks drive nothing.
  EXPECT_THROW(fault::validate_site(d, {FaultKind::kStuckAt1, mem_write}),
               Error);
  EXPECT_THROW(fault::validate_site(d, {FaultKind::kTransient, mem_write}),
               Error);
  // A well-formed site passes.
  fault::validate_site(d, {FaultKind::kSeuReg, r, -1, 0, 7, 3});
}

TEST(ErrorPaths, ArmingInvalidInjectorTargetThrows) {
  Design d = counter_with_mem();
  sim::Simulator sim(d);
  class BadTargets : public sim::FaultInjector {
    std::vector<NodeId> combinational_targets() const override {
      return {static_cast<NodeId>(1 << 20)};
    }
  } bad;
  EXPECT_THROW(sim.set_fault_injector(&bad), Error);
  EXPECT_EQ(sim.cycle(), 0u);  // simulator still usable
  sim.run(3);
  EXPECT_EQ(sim.cycle(), 3u);
}

TEST(ErrorPaths, HardeningRejectsUnusableDesigns) {
  Design no_out("no_out");
  no_out.input("a", 4);
  EXPECT_THROW(fault::tmr(no_out), Error);  // nothing to vote on

  Design no_mem("no_mem");
  no_mem.output("o", no_mem.input("a", 4));
  EXPECT_THROW(fault::parity_protect(no_mem), Error);  // nothing to protect
}

TEST(ErrorPaths, CsdHandlesBoundaryConstants) {
  EXPECT_EQ(synth::csd_nonzero_digits(0), 0);
  // Large magnitudes stay well-defined.
  EXPECT_GT(synth::csd_nonzero_digits((int64_t{1} << 40) - 1), 0);
  EXPECT_EQ(synth::csd_nonzero_digits(int64_t{1} << 40), 1);
}

}  // namespace
}  // namespace hlshc
