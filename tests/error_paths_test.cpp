// Error-path coverage: every public API that validates its inputs must
// reject bad usage with hlshc::Error (not UB, not silent misbehaviour).
#include <gtest/gtest.h>

#include "framework/compose.hpp"
#include "netlist/instantiate.hpp"
#include "netlist/ir.hpp"
#include "sim/simulator.hpp"
#include "sim/vcd.hpp"
#include "synth/csd.hpp"

namespace hlshc {
namespace {

using netlist::Design;
using netlist::NodeId;

TEST(ErrorPaths, InstantiateMissingBindingThrows) {
  Design sub("sub");
  NodeId a = sub.input("a", 8);
  sub.output("o", a);
  Design host("host");
  EXPECT_THROW(netlist::instantiate(host, sub, {}), Error);
}

TEST(ErrorPaths, InstantiateWidthMismatchThrows) {
  Design sub("sub");
  NodeId a = sub.input("a", 8);
  sub.output("o", a);
  Design host("host");
  NodeId narrow = host.input("x", 4);
  EXPECT_THROW(netlist::instantiate(host, sub, {{"a", narrow}}), Error);
}

TEST(ErrorPaths, RegisterDoubleNextThrows) {
  Design d("d");
  NodeId r = d.reg(4, 0, "r");
  NodeId c = d.constant(4, 1);
  d.set_reg_next(r, c);
  EXPECT_THROW(d.set_reg_next(r, c), Error);
}

TEST(ErrorPaths, RegisterEnableMustBeOneBit) {
  Design d("d");
  NodeId r = d.reg(4, 0, "r");
  NodeId c = d.constant(4, 1);
  NodeId wide = d.constant(4, 1);
  EXPECT_THROW(d.set_reg_next(r, c, wide), Error);
}

TEST(ErrorPaths, MemoryBadShapeThrows) {
  Design d("d");
  EXPECT_THROW(d.add_memory("m", 0, 16), Error);
  EXPECT_THROW(d.add_memory("m", 8, 0), Error);
}

TEST(ErrorPaths, MemWriteEnableMustBeOneBit) {
  Design d("d");
  int mem = d.add_memory("m", 8, 4);
  NodeId a = d.input("a", 2);
  NodeId v = d.input("v", 8);
  EXPECT_THROW(d.mem_write(mem, a, v, v), Error);
}

TEST(ErrorPaths, SimulatorRejectsInvalidDesign) {
  Design d("d");
  d.reg(4, 0, "dangling");  // no next-value
  EXPECT_THROW(sim::Simulator{d}, Error);
}

TEST(ErrorPaths, VcdWithNoSignalsThrows) {
  Design d("d");
  NodeId a = d.input("a", 4);
  d.output("o", a);
  sim::Simulator sim(d);
  EXPECT_THROW(sim::VcdTrace(sim, {}), Error);
}

TEST(ErrorPaths, ComposeRejectsBadStoreWidth) {
  Design row("row");
  for (int i = 0; i < 8; ++i) {
    NodeId x = row.input("i" + std::to_string(i), 12);
    row.output("o" + std::to_string(i), row.sext(x, 32));
  }
  Design col = row;  // same shape is fine for the check under test
  EXPECT_THROW(framework::compose_row_col(framework::PassKernel{row, 0},
                                          framework::PassKernel{col, 0}, 8,
                                          "bad"),
               Error);
  EXPECT_THROW(framework::compose_row_col(framework::PassKernel{row, 0},
                                          framework::PassKernel{col, 0}, 40,
                                          "bad"),
               Error);
}

TEST(ErrorPaths, BitVecSliceAndConcatBounds) {
  BitVec v(8, 0x5A);
  EXPECT_THROW(BitVec::slice(v, 8, 0), Error);
  EXPECT_THROW(BitVec::concat(BitVec(40, 1), BitVec(40, 1)), Error);
}

TEST(ErrorPaths, CsdHandlesBoundaryConstants) {
  EXPECT_EQ(synth::csd_nonzero_digits(0), 0);
  // Large magnitudes stay well-defined.
  EXPECT_GT(synth::csd_nonzero_digits((int64_t{1} << 40) - 1), 0);
  EXPECT_EQ(synth::csd_nonzero_digits(int64_t{1} << 40), 1);
}

}  // namespace
}  // namespace hlshc
