// Tests for the Chisel-style eDSL and design family: width-inference rules,
// bit-exact equivalence with the software model, cycle behaviour, and the
// Verilog-vs-Chisel area/performance shape of the paper.
#include "chisel/designs.hpp"
#include "chisel/dsl.hpp"

#include <gtest/gtest.h>

#include "axis/testbench.hpp"
#include "testutil.hpp"
#include "base/rng.hpp"
#include "idct/chenwang.hpp"
#include "rtl/designs.hpp"
#include "sim/simulator.hpp"
#include "synth/synthesize.hpp"

namespace hlshc::chisel {
namespace {

using testutil::realistic_coeff_block;
using testutil::software_idct;

// ---- DSL width inference ----------------------------------------------------

TEST(Dsl, AddSubInferMaxPlusOne) {
  Builder b("t");
  SInt a = b.input("a", 12);
  SInt c = b.input("c", 15);
  EXPECT_EQ((a + c).width(), 16);
  EXPECT_EQ((a - c).width(), 16);
  EXPECT_EQ((-a).width(), 13);
}

TEST(Dsl, MulInfersSumOfWidths) {
  Builder b("t");
  SInt a = b.input("a", 12);
  EXPECT_EQ((a * b.lit(idct::kW1)).width(), 12 + 13);
}

TEST(Dsl, ShiftInference) {
  Builder b("t");
  SInt a = b.input("a", 12);
  EXPECT_EQ((a << 11).width(), 23);
  EXPECT_EQ((a >> 8).width(), 4);
  EXPECT_EQ((a >> 20).width(), 1);
}

TEST(Dsl, LiteralWidthIsMinimal) {
  Builder b("t");
  EXPECT_EQ(b.lit(0).width(), 1);
  EXPECT_EQ(b.lit(127).width(), 8);
  EXPECT_EQ(b.lit(-128).width(), 8);
  EXPECT_EQ(b.lit(idct::kW1).width(), 13);
}

TEST(Dsl, MuxTakesMaxWidth) {
  Builder b("t");
  SInt a = b.input("a", 5);
  SInt c = b.input("c", 9);
  Bool s = b.input_bool("s");
  EXPECT_EQ(b.mux(s, a, c).width(), 9);
}

TEST(Dsl, ConnectRefusesTruncation) {
  Builder b("t");
  SInt r = b.reg_init(8, 0, "r");
  SInt wide = b.input("w", 12);
  EXPECT_THROW(b.connect(r, wide), Error);
}

TEST(Dsl, WidthOverflowRejected) {
  Builder b("t");
  SInt a = b.input("a", 40);
  EXPECT_THROW(a * a, Error);  // 80 inferred bits exceed the 64-bit limit
}

TEST(Dsl, DslComputesCorrectValues) {
  // (a + b) * 3 - (a << 1), evaluated through the simulator.
  Builder b("t");
  SInt a = b.input("a", 8);
  SInt c = b.input("c", 8);
  SInt expr = (a + c) * b.lit(3) - (a << 1);
  b.output("o", expr);
  netlist::Design d = b.take();
  sim::Simulator sim(d);
  sim.set_input("a", 10);
  sim.set_input("c", -3);
  sim.eval();
  EXPECT_EQ(sim.output_i64("o"), (10 - 3) * 3 - 20);
}

TEST(Dsl, BitExtraction) {
  Builder b("t");
  SInt a = b.input("a", 8);
  b.output_bool("b0", a.bit(0));
  b.output_bool("b7", a.bit(7));
  netlist::Design d = b.take();
  sim::Simulator sim(d);
  sim.set_input("a", -127);  // 1000_0001
  sim.eval();
  EXPECT_EQ(sim.output_i64("b0") != 0, true);
  EXPECT_EQ(sim.output_i64("b7") != 0, true);
}

// ---- row/col kernels ---------------------------------------------------------

TEST(ChiselKernels, RowPassMatchesSoftware) {
  Builder b("row");
  std::array<SInt, 8> in;
  for (int c = 0; c < 8; ++c)
    in[static_cast<size_t>(c)] = b.input("i" + std::to_string(c), 12);
  auto out = idct_row(b, in);
  for (int c = 0; c < 8; ++c)
    b.output("o" + std::to_string(c), out[static_cast<size_t>(c)]);
  netlist::Design d = b.take();
  sim::Simulator sim(d);
  SplitMix64 rng(21);
  for (int iter = 0; iter < 300; ++iter) {
    idct::Block blk = realistic_coeff_block(rng);
    int32_t row[8];
    for (int c = 0; c < 8; ++c) {
      row[c] = idct::at(blk, iter % 8, c);
      sim.set_input("i" + std::to_string(c), row[c]);
    }
    sim.eval();
    idct::idct_row_straight(row);
    for (int c = 0; c < 8; ++c)
      EXPECT_EQ(sim.output_i64("o" + std::to_string(c)), row[c]);
  }
}

// ---- full designs -------------------------------------------------------------

struct ChiselCase {
  const char* label;
  netlist::Design (*build)();
  int latency;
};

class ChiselFamily : public ::testing::TestWithParam<ChiselCase> {};

TEST_P(ChiselFamily, BitExactAgainstSoftwareModel) {
  netlist::Design d = GetParam().build();
  sim::Simulator sim(d);
  axis::StreamTestbench tb(sim);
  SplitMix64 rng(77);
  std::vector<idct::Block> ins;
  for (int i = 0; i < 8; ++i) ins.push_back(realistic_coeff_block(rng));
  auto out = tb.run(ins);
  ASSERT_EQ(out.size(), ins.size());
  for (size_t i = 0; i < ins.size(); ++i)
    EXPECT_EQ(out[i], software_idct(ins[i])) << "matrix " << i;
  EXPECT_TRUE(tb.monitor().clean());
}

TEST_P(ChiselFamily, CycleBehaviourMatchesVerilogTwin) {
  netlist::Design d = GetParam().build();
  sim::Simulator sim(d);
  axis::StreamTestbench tb(sim);
  SplitMix64 rng(78);
  std::vector<idct::Block> ins;
  for (int i = 0; i < 6; ++i) ins.push_back(realistic_coeff_block(rng));
  tb.run(ins);
  EXPECT_EQ(tb.timing().latency_cycles, GetParam().latency);
  EXPECT_DOUBLE_EQ(tb.timing().periodicity_cycles, 8.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllDesigns, ChiselFamily,
    ::testing::Values(ChiselCase{"initial", &build_chisel_initial, 17},
                      ChiselCase{"opt", &build_chisel_opt, 24}),
    [](const ::testing::TestParamInfo<ChiselCase>& info) {
      return info.param.label;
    });

// ---- the paper's Verilog-vs-Chisel shape --------------------------------------

TEST(ChiselVsVerilog, InitialDesignsLandWithinTenPercent) {
  // Paper Table II: Chisel initial = 105.7% performance / 94.6% area of the
  // Verilog initial design. The inferred widths must keep the two families
  // in the same band, with Chisel no worse.
  auto v = synth::synthesize_normalized(rtl::build_verilog_initial());
  auto c = synth::synthesize_normalized(build_chisel_initial());
  double perf_ratio = c.normal.fmax_mhz / v.normal.fmax_mhz;
  double area_ratio = static_cast<double>(c.area()) /
                      static_cast<double>(v.area());
  EXPECT_GT(perf_ratio, 0.95);
  EXPECT_LT(perf_ratio, 1.25);
  EXPECT_LT(area_ratio, 1.05);
  EXPECT_GT(area_ratio, 0.75);
}

TEST(ChiselVsVerilog, OptimizedDesignsComparable) {
  // Paper: optimized Chisel = 98.7% performance / 109.5% area of Verilog.
  auto v = synth::synthesize_normalized(rtl::build_verilog_opt2());
  auto c = synth::synthesize_normalized(build_chisel_opt());
  double perf_ratio = c.normal.fmax_mhz / v.normal.fmax_mhz;
  double area_ratio = static_cast<double>(c.area()) /
                      static_cast<double>(v.area());
  EXPECT_GT(perf_ratio, 0.85);
  EXPECT_LT(perf_ratio, 1.20);
  EXPECT_GT(area_ratio, 0.80);
  EXPECT_LT(area_ratio, 1.30);
}

}  // namespace
}  // namespace hlshc::chisel
