// Tests for the specialized arithmetic generators: exhaustive and random
// equivalence against plain multiplication, CSD vs binary cost, pipelining
// of generated units, and composition with the rest of the framework.
#include "framework/arithgen.hpp"

#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "idct/chenwang.hpp"
#include "sim/simulator.hpp"
#include "synth/csd.hpp"
#include "synth/synthesize.hpp"
#include "xls/pipeline.hpp"

namespace hlshc::framework {
namespace {

int64_t run_mult(netlist::Design& d, int64_t x) {
  sim::Simulator sim(d);
  sim.set_input("i0", x);
  sim.eval();
  return sim.output_i64("o0");
}

class IdctConstants : public ::testing::TestWithParam<int64_t> {};

TEST_P(IdctConstants, CsdMultiplierMatchesMultiplication) {
  ArithGenOptions o;
  netlist::Design d =
      generate_const_multiplier(GetParam(), o, "mul_csd");
  SplitMix64 rng(static_cast<uint64_t>(GetParam()));
  for (int iter = 0; iter < 200; ++iter) {
    int64_t x = rng.next_in(-32768, 32767);
    EXPECT_EQ(run_mult(d, x),
              static_cast<int32_t>(x * GetParam()));
  }
}

TEST_P(IdctConstants, BinaryVariantAlsoMatches) {
  ArithGenOptions o;
  o.csd = false;
  netlist::Design d = generate_const_multiplier(GetParam(), o, "mul_bin");
  SplitMix64 rng(static_cast<uint64_t>(GetParam()) + 1);
  for (int iter = 0; iter < 100; ++iter) {
    int64_t x = rng.next_in(-32768, 32767);
    EXPECT_EQ(run_mult(d, x), static_cast<int32_t>(x * GetParam()));
  }
}

INSTANTIATE_TEST_SUITE_P(
    W, IdctConstants,
    ::testing::Values(idct::kW1, idct::kW2, idct::kW3, idct::kW5, idct::kW6,
                      idct::kW7, 181, idct::kW1 - idct::kW7,
                      idct::kW1 + idct::kW7, -181, 1, -1, 0, 1024));

TEST(ArithGen, NegativeAndSmallInputsExhaustive) {
  ArithGenOptions o;
  o.input_width = 8;
  netlist::Design d = generate_const_multiplier(-2841, o, "neg");
  for (int x = -128; x <= 127; ++x)
    EXPECT_EQ(run_mult(d, x), x * -2841) << x;
}

TEST(ArithGen, CsdUsesFewerAddersThanBinary) {
  // A run of ones (0x7FFF = 15 binary digits) collapses to 2 CSD digits
  // (2^15 - 1); isolated-ones constants like 0x5555 gain nothing, which
  // is also checked.
  ArithGenOptions csd, bin;
  bin.csd = false;
  synth::SynthOptions nodsp;
  nodsp.maxdsp = 0;
  auto rc = synth::synthesize(
      generate_const_multiplier(0x7FFF, csd, "csd"), nodsp);
  auto rb = synth::synthesize(
      generate_const_multiplier(0x7FFF, bin, "bin"), nodsp);
  EXPECT_LT(rc.n_lut, rb.n_lut / 4);
  EXPECT_EQ(synth::csd_nonzero_digits(0x5555),
            synth::binary_nonzero_digits(0x5555));
}

TEST(ArithGen, GeneratedUnitIsPipelinable) {
  // The generated tree is pure dataflow, so the XLS scheduler can pipeline
  // it directly — the composability the paper's framework asks for.
  netlist::Design d =
      generate_const_multiplier(idct::kW3, ArithGenOptions{}, "p");
  auto pr = xls::pipeline_function(d, 2);
  EXPECT_GE(pr.latency, 1);
  sim::Simulator sim(pr.design);
  sim.set_input("i0", -1234);
  for (int i = 0; i < pr.latency; ++i) sim.step();
  EXPECT_EQ(sim.output_i64("o0"), -1234 * idct::kW3);
}

TEST(ArithGen, DotProductMatchesReference) {
  // One quarter of an IDCT butterfly stage: W7*a + (W1-W7)*b - 181*c.
  std::vector<int64_t> consts = {idct::kW7, idct::kW1 - idct::kW7, -181};
  netlist::Design d =
      generate_dot_product(consts, ArithGenOptions{}, "dot");
  sim::Simulator sim(d);
  SplitMix64 rng(9);
  for (int iter = 0; iter < 200; ++iter) {
    int64_t a = rng.next_in(-2048, 2047), b = rng.next_in(-2048, 2047),
            c = rng.next_in(-2048, 2047);
    sim.set_input("i0", a);
    sim.set_input("i1", b);
    sim.set_input("i2", c);
    sim.eval();
    EXPECT_EQ(sim.output_i64("o0"),
              static_cast<int32_t>(a * idct::kW7 +
                                   b * (idct::kW1 - idct::kW7) - c * 181));
  }
}

TEST(ArithGen, PowerOfTwoIsPureWiring) {
  synth::SynthOptions nodsp;
  nodsp.maxdsp = 0;
  auto r = synth::synthesize(
      generate_const_multiplier(64, ArithGenOptions{}, "p2"), nodsp);
  EXPECT_EQ(r.n_lut, 0);
}

TEST(ArithGen, DotProductRejectsEmpty) {
  EXPECT_THROW(generate_dot_product({}, ArithGenOptions{}, "e"), Error);
}

}  // namespace
}  // namespace hlshc::framework
