// Failure injection for the AXI-Stream protocol monitor: deliberately
// broken DUTs must be flagged with the right violation class. A watchdog
// that only ever sees correct designs is untested; these fixtures prove
// the monitor's teeth.
#include <gtest/gtest.h>

#include "axis/monitor.hpp"
#include "axis/stream.hpp"
#include "sim/simulator.hpp"

namespace hlshc::axis {
namespace {

using netlist::Design;
using netlist::NodeId;

/// Skeleton DUT with the canonical ports; the master-side behaviour is
/// supplied by the callback, which receives the design and the m_tready
/// input and must create m_tvalid / m_tlast / lane outputs.
Design skeleton(
    const std::function<void(Design&, NodeId m_ready)>& master_side) {
  Design d("broken");
  for (int c = 0; c < 8; ++c) d.input(lane_port("s", c), kInElemWidth);
  d.input("s_tvalid", 1);
  d.input("s_tlast", 1);
  NodeId m_ready = d.input("m_tready", 1);
  d.output("s_tready", d.constant(1, 1));
  master_side(d, m_ready);
  return d;
}

void add_lanes(Design& d, NodeId value9) {
  for (int c = 0; c < 8; ++c) d.output(lane_port("m", c), value9);
}

std::vector<std::string> observe(Design& d, int cycles) {
  sim::Simulator sim(d);
  sim.set_input("m_tready", 0);  // stall the sink: offers must persist
  Monitor monitor(sim);
  for (int i = 0; i < cycles; ++i) {
    sim.eval();
    monitor.sample();
    sim.step();
  }
  return monitor.violations();
}

TEST(MonitorInjection, RetractedValidIsCaught) {
  // TVALID toggles every cycle regardless of TREADY: a V1 violation.
  Design d = skeleton([](Design& d, NodeId) {
    NodeId t = d.reg(1, 1, "t");
    d.set_reg_next(t, d.bnot(t, 1));
    d.output("m_tvalid", t);
    d.output("m_tlast", d.constant(1, 0));
    add_lanes(d, d.constant(kOutElemWidth, 5));
  });
  auto v = observe(d, 6);
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v[0].find("TVALID retracted"), std::string::npos);
}

TEST(MonitorInjection, UnstableDataWhileStalledIsCaught) {
  // TVALID held, but the data counts up while the sink is stalled: V2.
  Design d = skeleton([](Design& d, NodeId) {
    NodeId cnt = d.reg(kOutElemWidth, 0, "cnt");
    d.set_reg_next(cnt, d.add(cnt, d.constant(kOutElemWidth, 1),
                              kOutElemWidth));
    d.output("m_tvalid", d.constant(1, 1));
    d.output("m_tlast", d.constant(1, 0));
    add_lanes(d, cnt);
  });
  auto v = observe(d, 4);
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v[0].find("TDATA lane"), std::string::npos);
}

TEST(MonitorInjection, UnstableLastWhileStalledIsCaught) {
  Design d = skeleton([](Design& d, NodeId) {
    NodeId t = d.reg(1, 0, "t");
    d.set_reg_next(t, d.bnot(t, 1));
    d.output("m_tvalid", d.constant(1, 1));
    d.output("m_tlast", t);
    add_lanes(d, d.constant(kOutElemWidth, 5));
  });
  auto v = observe(d, 4);
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v[0].find("TLAST changed"), std::string::npos);
}

TEST(MonitorInjection, ShortFrameIsCaught) {
  // TLAST on every beat: 1-beat frames instead of 8 (V3).
  Design d = skeleton([](Design& d, NodeId m_ready) {
    d.output("m_tvalid", d.constant(1, 1));
    d.output("m_tlast", d.constant(1, 1));
    (void)m_ready;
    add_lanes(d, d.constant(kOutElemWidth, 5));
  });
  sim::Simulator sim(d);
  sim.set_input("m_tready", 1);  // accept, so frames complete
  Monitor monitor(sim);
  for (int i = 0; i < 3; ++i) {
    sim.eval();
    monitor.sample();
    sim.step();
  }
  auto v = monitor.violations();
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v[0].find("frame of 1 beats"), std::string::npos);
}

TEST(MonitorInjection, MissingLastIsCaught) {
  // Never asserts TLAST: after 8 beats, V3.
  Design d = skeleton([](Design& d, NodeId) {
    d.output("m_tvalid", d.constant(1, 1));
    d.output("m_tlast", d.constant(1, 0));
    add_lanes(d, d.constant(kOutElemWidth, 5));
  });
  sim::Simulator sim(d);
  sim.set_input("m_tready", 1);
  Monitor monitor(sim);
  for (int i = 0; i < 10; ++i) {
    sim.eval();
    monitor.sample();
    sim.step();
  }
  auto v = monitor.violations();
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v[0].find("missing TLAST"), std::string::npos);
}

TEST(MonitorInjection, CompliantStallerIsClean) {
  // Control: a DUT that holds a single stable offer forever is legal.
  Design d = skeleton([](Design& d, NodeId) {
    d.output("m_tvalid", d.constant(1, 1));
    d.output("m_tlast", d.constant(1, 0));
    add_lanes(d, d.constant(kOutElemWidth, 42));
  });
  auto v = observe(d, 10);
  EXPECT_TRUE(v.empty());
}

}  // namespace
}  // namespace hlshc::axis
