// Service-layer tests: the admission queue, deadline tokens, the compiled-
// design cache, the wire protocol, client retry/backoff — and the headline
// resilience property: a hundred hostile requests cannot degrade the daemon,
// and the compile it serves afterwards is bitwise identical to a direct
// tools::compile call.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "base/deadline.hpp"
#include "netlist/dump.hpp"
#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "par/queue.hpp"
#include "rtl/designs.hpp"
#include "svc/cache.hpp"
#include "svc/client.hpp"
#include "svc/protocol.hpp"
#include "svc/server.hpp"
#include "tools/compile.hpp"
#include "workload/workload.hpp"

namespace hlshc::svc {
namespace {

using obs::Json;

// ---------------------------------------------------------------- Deadline

TEST(Deadline, ExpiresAndThrowsWithContext) {
  auto generous = Deadline::shared_after_ms(60000);
  EXPECT_FALSE(generous->expired());
  EXPECT_NO_THROW(generous->check("plenty of budget"));
  EXPECT_GT(generous->remaining_ms(), 0);

  auto expired = Deadline::shared_after_ms(-1);  // legal: already past
  EXPECT_TRUE(expired->expired());
  EXPECT_LE(expired->remaining_ms(), 0);
  try {
    expired->check("compiling the test design");
    FAIL() << "expired deadline did not throw";
  } catch (const DeadlineExceeded& e) {
    EXPECT_NE(std::string(e.what()).find("compiling the test design"),
              std::string::npos);
    EXPECT_EQ(e.budget_ms(), -1);
  }
}

TEST(Deadline, ExpiredTokenAbortsTheCompilePipeline) {
  tools::CompileOptions options;
  options.deadline = Deadline::shared_after_ms(-1);
  EXPECT_THROW(tools::compile(rtl::build_verilog_initial(), options),
               DeadlineExceeded);
}

// --------------------------------------------------------------- TaskQueue

TEST(TaskQueue, BoundsBacklogAndCountsShedding) {
  par::TaskQueue queue(1, 2);
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool gate_open = false;
  std::atomic<int> ran{0};
  const auto blocked_task = [&] {
    std::unique_lock<std::mutex> lock(gate_mutex);
    gate_cv.wait(lock, [&] { return gate_open; });
    ++ran;
  };

  // One task occupies the worker; the next two fill the backlog; the
  // fourth must be shed without blocking.
  ASSERT_TRUE(queue.try_submit(blocked_task));
  while (queue.depth() > 0)  // wait for the worker to start it
    std::this_thread::yield();
  ASSERT_TRUE(queue.try_submit(blocked_task));
  ASSERT_TRUE(queue.try_submit(blocked_task));
  EXPECT_EQ(queue.depth(), 2);
  EXPECT_FALSE(queue.try_submit(blocked_task));
  EXPECT_EQ(queue.accepted(), 3);
  EXPECT_EQ(queue.shed(), 1);

  {
    std::lock_guard<std::mutex> lock(gate_mutex);
    gate_open = true;
  }
  gate_cv.notify_all();
  queue.drain();
  EXPECT_EQ(ran.load(), 3);
  EXPECT_EQ(queue.depth(), 0);

  // Capacity frees up once drained.
  EXPECT_TRUE(queue.try_submit([] {}));
  queue.drain();
}

TEST(TaskQueue, CancelPendingDropsOnlyUnstartedTasks) {
  par::TaskQueue queue(1, 8);
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool gate_open = false;
  std::atomic<int> ran{0};

  ASSERT_TRUE(queue.try_submit([&] {
    std::unique_lock<std::mutex> lock(gate_mutex);
    gate_cv.wait(lock, [&] { return gate_open; });
    ++ran;
  }));
  while (queue.depth() > 0) std::this_thread::yield();
  for (int i = 0; i < 3; ++i)
    ASSERT_TRUE(queue.try_submit([&] { ++ran; }));
  EXPECT_EQ(queue.cancel_pending(), 3);
  {
    std::lock_guard<std::mutex> lock(gate_mutex);
    gate_open = true;
  }
  gate_cv.notify_all();
  queue.drain();
  EXPECT_EQ(ran.load(), 1);  // the in-flight task finished; the rest never ran
}

TEST(TaskQueue, ParallelWorkersAllExecute) {
  par::TaskQueue queue(4, 64);
  std::atomic<int> ran{0};
  for (int i = 0; i < 64; ++i)
    ASSERT_TRUE(queue.try_submit([&] { ++ran; }));
  queue.drain();
  EXPECT_EQ(ran.load(), 64);
  EXPECT_EQ(queue.accepted(), 64);
  EXPECT_EQ(queue.shed(), 0);
}

// ---------------------------------------------------------------- Protocol

TEST(Protocol, ParsesFullRequest) {
  const Request req = parse_request(
      R"({"id": 7, "method": "compile", "params": {"design": "x"}, )"
      R"("deadline_ms": 250})",
      1 << 16);
  EXPECT_EQ(req.id.as_int(), 7);
  EXPECT_EQ(req.method, "compile");
  EXPECT_EQ(req.params.find("design")->as_string(), "x");
  EXPECT_EQ(req.deadline_ms, 250);
}

TEST(Protocol, RejectsEachMalformationWithTheRightCode) {
  const auto code_of = [](const std::string& line, size_t max_bytes) {
    try {
      parse_request(line, max_bytes);
      return std::string("no error");
    } catch (const ProtocolError& e) {
      return std::string(error_code_name(e.code()));
    }
  };
  EXPECT_EQ(code_of("not json at all", 1 << 16), "invalid_request");
  EXPECT_EQ(code_of("[1,2,3]", 1 << 16), "invalid_request");
  EXPECT_EQ(code_of(R"({"params": {}})", 1 << 16), "invalid_request");
  EXPECT_EQ(code_of(R"({"method": 42})", 1 << 16), "invalid_request");
  EXPECT_EQ(code_of(R"({"method": "m", "params": []})", 1 << 16),
            "invalid_request");
  EXPECT_EQ(code_of(R"({"method": "m", "deadline_ms": -5})", 1 << 16),
            "invalid_request");
  EXPECT_EQ(code_of(R"({"method": "m", "deadline_ms": 0})", 1 << 16),
            "invalid_request");
  EXPECT_EQ(code_of(std::string(100, ' '), 64), "oversized_request");
}

TEST(Protocol, OnlyOverloadedIsTransient) {
  EXPECT_TRUE(is_transient(ErrorCode::kOverloaded));
  EXPECT_FALSE(is_transient(ErrorCode::kInvalidRequest));
  EXPECT_FALSE(is_transient(ErrorCode::kUnknownMethod));
  EXPECT_FALSE(is_transient(ErrorCode::kOversizedRequest));
  EXPECT_FALSE(is_transient(ErrorCode::kDeadlineExceeded));
  EXPECT_FALSE(is_transient(ErrorCode::kInternalError));
}

// ------------------------------------------------------------ DesignCache

TEST(DesignCache, HitsOnContentNotOnName) {
  DesignCache cache;
  tools::CompileOptions options;
  const CachedCompile first =
      cache.get_or_compile(rtl::build_verilog_initial(), options);
  EXPECT_FALSE(first.hit);
  // A fresh, identical build of the same source: same content, so a hit.
  const CachedCompile second =
      cache.get_or_compile(rtl::build_verilog_initial(), options);
  EXPECT_TRUE(second.hit);
  EXPECT_EQ(first.key, second.key);
  EXPECT_EQ(first.result_hash, second.result_hash);
  EXPECT_EQ(first.design.get(), second.design.get());  // shared entry

  // Different options: different key, a miss.
  tools::CompileOptions raw;
  raw.optimize = false;
  EXPECT_FALSE(
      cache.get_or_compile(rtl::build_verilog_initial(), raw).hit);

  const DesignCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 2);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(DesignCache, EvictsLeastRecentlyUsedUnderEntryBudget) {
  CacheConfig config;
  config.max_entries = 2;
  DesignCache cache(config);
  tools::CompileOptions options;
  cache.get_or_compile(rtl::build_verilog_initial(), options);
  cache.get_or_compile(rtl::build_verilog_opt1(), options);
  cache.get_or_compile(rtl::build_verilog_initial(), options);  // touch LRU
  cache.get_or_compile(rtl::build_verilog_opt2(), options);     // evicts opt1

  DesignCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_TRUE(
      cache.get_or_compile(rtl::build_verilog_initial(), options).hit);
  EXPECT_FALSE(  // opt1 was the LRU victim
      cache.get_or_compile(rtl::build_verilog_opt1(), options).hit);
}

TEST(DesignCache, ByteBudgetEvictsButKeepsTheNewestEntry) {
  CacheConfig config;
  config.max_bytes = 1;  // everything is over budget
  DesignCache cache(config);
  tools::CompileOptions options;
  cache.get_or_compile(rtl::build_verilog_initial(), options);
  EXPECT_EQ(cache.stats().entries, 1u);  // sole entry never self-evicts
  cache.get_or_compile(rtl::build_verilog_opt1(), options);
  const DesignCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.evictions, 1);
}

// ------------------------------------------------------------------ Server

ServerOptions small_server(int workers = 1, int queue = 8) {
  ServerOptions options;
  options.workers = workers;
  options.queue_capacity = queue;
  return options;
}

Json call_ok(Server& server, const std::string& line) {
  const Json response = Json::parse(server.handle(line));
  EXPECT_TRUE(response.find("ok")->as_bool())
      << "request failed: " << response.dump();
  return *response.find("result");
}

std::string error_code_of(Server& server, const std::string& line) {
  const Json response = Json::parse(server.handle(line));
  EXPECT_FALSE(response.find("ok")->as_bool())
      << "request unexpectedly succeeded: " << response.dump();
  return response.find("error")->find("code")->as_string();
}

TEST(Server, AnswersPingAndListsBuiltinDesigns) {
  Server server(small_server());
  EXPECT_TRUE(call_ok(server, R"({"method":"ping"})").find("pong")->as_bool());
  const Json result = call_ok(server, R"({"method":"list_designs"})");
  bool found = false;
  const Json& designs = *result.find("designs");
  for (size_t i = 0; i < designs.size(); ++i)
    if (designs[i].as_string() == "verilog_opt2") found = true;
  EXPECT_TRUE(found);
}

TEST(Server, ListDesignsIsSortedStableAndSpansTheRegistry) {
  Server server(small_server());
  const Json first = call_ok(server, R"({"method":"list_designs"})");
  const Json& designs = *first.find("designs");
  std::vector<std::string> names;
  for (size_t i = 0; i < designs.size(); ++i)
    names.push_back(designs[i].as_string());
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  // Qualified registry names and the historical bare names coexist.
  for (const char* expected :
       {"idct.verilog_initial", "idct.bambu", "fdct.rtl_comb",
        "fir16.chisel_comb", "matmul.xls_p2", "verilog_opt2",
        "chisel_initial"})
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing design '" << expected << '\'';
  // Slow builders stay out of the long-running service.
  EXPECT_EQ(std::find(names.begin(), names.end(), "idct.vhls_pushbutton"),
            names.end());

  const Json& workloads = *first.find("workloads");
  std::vector<std::string> wnames;
  for (size_t i = 0; i < workloads.size(); ++i)
    wnames.push_back(workloads[i].as_string());
  EXPECT_EQ(wnames, workload::Registry::instance().names());

  // Stable: a second call returns byte-identical lists.
  const Json second = call_ok(server, R"({"method":"list_designs"})");
  EXPECT_EQ(first.dump(), second.dump());
}

TEST(Server, UnknownWorkloadIsInvalidRequestOnEveryMethod) {
  Server server(small_server());
  for (const char* method : {"compile", "evaluate", "campaign"}) {
    const std::string line = std::string(R"({"method":")") + method +
                             R"(","params":{"design":"verilog_initial",)"
                             R"("workload":"warp_core"}})";
    EXPECT_EQ(error_code_of(server, line), "invalid_request") << method;
  }
  EXPECT_EQ(error_code_of(server,
                          R"({"method":"compile","params":)"
                          R"({"design":"verilog_initial","workload":42}})"),
            "invalid_request");
}

TEST(Server, QualifiedDesignNameSelectsItsWorkload) {
  Server server(small_server());
  const Json inferred = call_ok(
      server,
      R"({"method":"compile","params":{"design":"fir16.rtl_comb"}})");
  EXPECT_EQ(inferred.find("workload")->as_string(), "fir16");
  // An explicit params.workload wins over the name prefix; bare legacy
  // names default to the paper's benchmark.
  const Json explicit_wl = call_ok(
      server, R"({"method":"compile","params":)"
              R"({"design":"fir16.rtl_comb","workload":"fir16"}})");
  EXPECT_EQ(explicit_wl.find("workload")->as_string(), "fir16");
  const Json legacy = call_ok(
      server,
      R"({"method":"compile","params":{"design":"verilog_initial"}})");
  EXPECT_EQ(legacy.find("workload")->as_string(), "idct");
}

TEST(Server, EvaluatesARegistryWorkloadEndToEnd) {
  Server server(small_server());
  const Json result = call_ok(
      server, R"({"method":"evaluate","params":)"
              R"({"design":"matmul.rtl_comb","matrices":2}})");
  EXPECT_EQ(result.find("workload")->as_string(), "matmul");
  EXPECT_TRUE(result.find("functional")->as_bool());
  EXPECT_GT(result.find("throughput_mops")->as_number(), 0.0);
  EXPECT_GT(result.find("area")->as_int(), 0);
}

TEST(Server, MapsEachFailureClassToItsCode) {
  Server server(small_server());
  EXPECT_EQ(error_code_of(server, "{{{nope"), "invalid_request");
  EXPECT_EQ(error_code_of(server, R"({"method":"frobnicate"})"),
            "unknown_method");
  EXPECT_EQ(error_code_of(
                server,
                R"({"method":"compile","params":{"design":"no_such"}})"),
            "invalid_request");
  EXPECT_EQ(error_code_of(
                server, R"({"method":"compile","params":{"design":42}})"),
            "invalid_request");
  const std::string oversized = R"({"method":"ping","params":{"pad":")" +
                                std::string(1 << 17, 'x') + "\"}}";
  EXPECT_EQ(error_code_of(server, oversized), "oversized_request");
}

TEST(Server, ThrowingDesignBuilderBecomesInternalErrorAndServerSurvives) {
  Server server(small_server());
  server.register_design("bomb", []() -> netlist::Design {
    throw std::runtime_error("builder exploded");
  });
  const Json response = Json::parse(
      server.handle(R"({"id":9,"method":"compile","params":{"design":"bomb"}})"));
  EXPECT_FALSE(response.find("ok")->as_bool());
  EXPECT_EQ(response.find("error")->find("code")->as_string(),
            "internal_error");
  EXPECT_NE(response.find("error")->find("message")->as_string().find(
                "builder exploded"),
            std::string::npos);
  EXPECT_EQ(response.find("id")->as_int(), 9);
  // The daemon is unharmed.
  EXPECT_TRUE(call_ok(server, R"({"method":"ping"})").find("pong")->as_bool());
}

TEST(Server, DeadlineExpiresMidRequest) {
  Server server(small_server());
  server.register_design("slow", [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    return rtl::build_verilog_initial();
  });
  EXPECT_EQ(
      error_code_of(
          server,
          R"({"method":"compile","params":{"design":"slow"},"deadline_ms":20})"),
      "deadline_exceeded");
  // Without the deadline the same request succeeds.
  const Json ok = call_ok(
      server, R"({"method":"compile","params":{"design":"slow"}})");
  EXPECT_GT(ok.find("node_count")->as_int(), 0);
}

TEST(Server, CompileIsCachedAcrossRequests) {
  Server server(small_server());
  const std::string line =
      R"({"method":"compile","params":{"design":"verilog_opt2"}})";
  const Json first = call_ok(server, line);
  EXPECT_FALSE(first.find("cached")->as_bool());
  const Json second = call_ok(server, line);
  EXPECT_TRUE(second.find("cached")->as_bool());
  EXPECT_EQ(first.find("content_hash")->as_string(),
            second.find("content_hash")->as_string());
  EXPECT_EQ(server.cache_stats().hits, 1);
}

TEST(Server, CacheEvictionUnderTinyBudget) {
  ServerOptions options = small_server();
  options.cache.max_entries = 1;
  Server server(options);
  call_ok(server, R"({"method":"compile","params":{"design":"verilog_initial"}})");
  call_ok(server, R"({"method":"compile","params":{"design":"verilog_opt1"}})");
  const DesignCache::Stats stats = server.cache_stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GE(stats.evictions, 1);
  const Json result = call_ok(server, R"({"method":"stats"})");
  EXPECT_EQ(result.find("cache")->find("entries")->as_int(), 1);
}

TEST(Server, ShedsWhenTheQueueIsFullAndRecovers) {
  ServerOptions options = small_server(/*workers=*/1, /*queue=*/1);
  Server server(options);
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool gate_open = false;
  server.register_design("gated", [&] {
    std::unique_lock<std::mutex> lock(gate_mutex);
    gate_cv.wait(lock, [&] { return gate_open; });
    return rtl::build_verilog_initial();
  });

  // Burst: one executing, one queued, the rest shed immediately.
  const std::string line =
      R"({"method":"compile","params":{"design":"gated"}})";
  std::vector<std::future<std::string>> futures;
  for (int i = 0; i < 10; ++i) futures.push_back(server.submit(line));
  while (server.queue_depth() > 0 && server.shed_count() == 0)
    std::this_thread::yield();

  int shed = 0;
  std::vector<Json> responses;
  {
    std::lock_guard<std::mutex> lock(gate_mutex);
    gate_open = true;
  }
  gate_cv.notify_all();
  for (auto& f : futures) responses.push_back(Json::parse(f.get()));
  for (const Json& r : responses) {
    if (r.find("ok")->as_bool()) continue;
    EXPECT_EQ(r.find("error")->find("code")->as_string(), "overloaded");
    EXPECT_GT(r.find("error")->find("retry_after_ms")->as_int(), 0);
    ++shed;
  }
  EXPECT_GE(shed, 7);  // 10 submitted, at most ~3 in flight at once
  EXPECT_EQ(server.shed_count(), shed);

  // Recovery: the daemon serves normally once the burst is over.
  EXPECT_TRUE(call_ok(server, R"({"method":"ping"})").find("pong")->as_bool());
}

// The headline property: 100 hostile requests in a row cannot degrade the
// daemon, and the compile served afterwards is bitwise identical to calling
// tools::compile directly.
TEST(Server, SurvivesPoisonRequestsAndStaysBitwiseCorrect) {
  Server server(small_server());
  server.register_design("bomb", []() -> netlist::Design {
    throw std::runtime_error("builder exploded");
  });

  const std::vector<std::string> poison = {
      "",                                     // empty: invalid JSON
      "{",                                    // truncated
      "null",                                 // non-object root
      R"({"method": 3})",                     // ill-typed method
      R"({"method":"no_such_method"})",       // unknown method
      R"({"method":"compile"})",              // missing params.design
      R"({"method":"compile","params":{"design":"no_such"}})",
      R"({"method":"compile","params":{"design":"bomb"}})",  // throws
      R"({"method":"compile","params":{"design":"verilog_opt2",)"
      R"("optimize":"yes"}})",                // ill-typed option
      R"({"method":"evaluate","params":{"design":"verilog_opt2",)"
      R"("matrices":-3}})",                   // out-of-range option
      R"({"method":"campaign","params":{"design":"verilog_opt2",)"
      R"("kind":"gamma_ray"}})",              // unknown fault kind
      R"({"method":"dse","params":{"flow":"no_such_flow"}})",
      R"({"method":"ping","deadline_ms":-1})",  // invalid deadline
      R"({"method":"ping","params":[1,2]})",    // ill-typed params
      std::string(1 << 17, 'x'),                // oversized
  };
  int failures = 0;
  for (int i = 0; i < 100; ++i) {
    const Json response =
        Json::parse(server.handle(poison[static_cast<size_t>(i) %
                                         poison.size()]));
    EXPECT_FALSE(response.find("ok")->as_bool()) << response.dump();
    ++failures;
  }
  EXPECT_EQ(failures, 100);

  // The daemon still compiles, and the result is the direct pipeline's,
  // byte for byte.
  const Json result = call_ok(
      server,
      R"({"method":"compile","params":{"design":"verilog_opt2",)"
      R"("emit_netlist":true}})");
  const tools::CompiledDesign direct =
      tools::compile(rtl::build_verilog_opt2());
  const std::string direct_dump = netlist::dump_text(direct.design);
  EXPECT_EQ(result.find("netlist")->as_string(), direct_dump);
  EXPECT_EQ(result.find("content_hash")->as_string(),
            content_hash(direct_dump));

  // Health metrics survived the storm and are visible.
  const Json stats = call_ok(server, R"({"method":"stats"})");
  EXPECT_GE(stats.find("queue")->find("accepted")->as_int(), 1);
  EXPECT_EQ(stats.find("cache")->find("misses")->as_int(), 1);
}

TEST(Server, EvaluateAndCampaignShareTheCompileCache) {
  Server server(small_server());
  const Json eval = call_ok(
      server,
      R"({"method":"evaluate","params":{"design":"verilog_opt2",)"
      R"("matrices":2}})");
  EXPECT_TRUE(eval.find("functional")->as_bool());
  EXPECT_GT(eval.find("throughput_mops")->as_int(), 0);
  const Json campaign = call_ok(
      server,
      R"({"method":"campaign","params":{"design":"verilog_opt2",)"
      R"("sites":4,"seed":7}})");
  EXPECT_TRUE(campaign.find("cached")->as_bool());  // evaluate warmed it
  EXPECT_EQ(campaign.find("sites")->as_int(), 4);
  EXPECT_TRUE(campaign.find("reference_functional")->as_bool());
}

// ------------------------------------------------------------------ Client

TEST(Client, ReturnsResultAndRaisesStructuredErrors) {
  Server server(small_server());
  Client client(server);
  const Json pong = client.call("ping");
  EXPECT_TRUE(pong.find("pong")->as_bool());

  try {
    client.call("frobnicate");
    FAIL() << "unknown method did not throw";
  } catch (const RpcError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUnknownMethod);
    EXPECT_EQ(e.attempts(), 1);  // permanent: never retried
  }
  EXPECT_EQ(client.retries(), 0);
}

TEST(Client, RetriesOverloadUntilTheQueueDrains) {
  ServerOptions options = small_server(/*workers=*/1, /*queue=*/1);
  Server server(options);
  server.register_design("slow", [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    return rtl::build_verilog_initial();
  });

  // Fill the worker and the queue, then call through the retrying client:
  // the first attempt is shed, backoff retries land after the drain.
  const std::string line =
      R"({"method":"compile","params":{"design":"slow"}})";
  auto busy1 = server.submit(line);
  while (server.queue_depth() > 0) std::this_thread::yield();
  auto busy2 = server.submit(line);  // fills the queue deterministically

  RetryPolicy policy;
  policy.max_attempts = 12;
  policy.initial_backoff_ms = 2;
  Client client(server, policy);
  const Json pong = client.call("ping");
  EXPECT_TRUE(pong.find("pong")->as_bool());
  EXPECT_GE(client.retries(), 1);
  busy1.get();
  busy2.get();
}

TEST(Client, RetryBudgetExhaustionSurfacesOverloaded) {
  ServerOptions options = small_server(/*workers=*/1, /*queue=*/1);
  Server server(options);
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool gate_open = false;
  server.register_design("gated", [&] {
    std::unique_lock<std::mutex> lock(gate_mutex);
    gate_cv.wait(lock, [&] { return gate_open; });
    return rtl::build_verilog_initial();
  });
  // Deterministic full-queue state: wait for the worker to dequeue the
  // first gated task before submitting the second — otherwise the second
  // could be shed and the client's ping would be *queued* behind the gate
  // instead of shed, deadlocking the test thread inside call().
  const std::string line =
      R"({"method":"compile","params":{"design":"gated"}})";
  auto busy1 = server.submit(line);
  while (server.queue_depth() > 0) std::this_thread::yield();
  auto busy2 = server.submit(line);
  ASSERT_EQ(server.queue_depth(), 1);

  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_ms = 1;
  Client client(server, policy);
  try {
    client.call("ping");
    FAIL() << "overloaded server did not exhaust the retry budget";
  } catch (const RpcError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kOverloaded);
    EXPECT_EQ(e.attempts(), 3);
  }
  {
    std::lock_guard<std::mutex> lock(gate_mutex);
    gate_open = true;
  }
  gate_cv.notify_all();
  busy1.get();
  busy2.get();
}

TEST(Client, JitterIsDeterministicPerSeed) {
  Server server(small_server());
  RetryPolicy a;
  a.seed = 1;
  RetryPolicy b;
  b.seed = 1;
  RetryPolicy c;
  c.seed = 2;
  // Same seed, same stream; different seed, (almost surely) different.
  Client ca(server, a), cb(server, b), cc(server, c);
  // The jitter stream is private; exercise it through call() on a healthy
  // server (no retries, so this is a determinism smoke check of the path).
  EXPECT_TRUE(ca.call("ping").find("pong")->as_bool());
  EXPECT_TRUE(cb.call("ping").find("pong")->as_bool());
  EXPECT_TRUE(cc.call("ping").find("pong")->as_bool());
}

// Two clients hammering a tiny server concurrently: every call either
// succeeds or fails with a structured transient error, the server never
// wedges, and it answers cleanly afterwards.
TEST(Server, TwoClientOverloadSoakEndsHealthy) {
  ServerOptions options = small_server(/*workers=*/2, /*queue=*/2);
  Server server(options);
  server.register_design("slowish", [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    return rtl::build_verilog_initial();
  });

  std::atomic<int> succeeded{0}, overloaded{0};
  const auto soak = [&](uint64_t seed) {
    RetryPolicy policy;
    policy.max_attempts = 6;
    policy.initial_backoff_ms = 1;
    policy.seed = seed;
    Client client(server, policy);
    for (int i = 0; i < 12; ++i) {
      try {
        client.call("compile", Json::parse(R"({"design":"slowish"})"));
        ++succeeded;
      } catch (const RpcError& e) {
        EXPECT_EQ(e.code(), ErrorCode::kOverloaded) << e.what();
        ++overloaded;
      }
    }
  };
  std::thread t1(soak, 11), t2(soak, 22);
  t1.join();
  t2.join();

  EXPECT_EQ(succeeded + overloaded, 24);
  EXPECT_GT(succeeded.load(), 0);
  // After the storm: empty queue, healthy daemon, warm cache.
  EXPECT_EQ(server.queue_depth(), 0);
  EXPECT_TRUE(call_ok(server, R"({"method":"ping"})").find("pong")->as_bool());
  EXPECT_GE(server.cache_stats().hits, 1);
}

TEST(Server, EveryResponseCarriesATraceId) {
  Server server(small_server());
  // Success, caller-bug error, and even an unparseable line: all stamped.
  const Json ok = Json::parse(server.handle(
      R"({"id":1,"method":"compile","params":{"design":"verilog_opt1"}})"));
  const Json bad = Json::parse(
      server.handle(R"({"method":"compile","params":{"design":"nope"}})"));
  const Json mangled = Json::parse(server.handle("{{{nope"));
  for (const Json* r : {&ok, &bad, &mangled}) {
    const Json* id = r->find("trace_id");
    ASSERT_NE(id, nullptr) << r->dump();
    EXPECT_EQ(id->as_string().size(), 16u);
    EXPECT_NE(obs::parse_trace_id(id->as_string()), 0u);
  }
  EXPECT_NE(ok.find("trace_id")->as_string(),
            bad.find("trace_id")->as_string());
}

TEST(Server, TraceMethodCorrelatesRequestsAndEvents) {
  obs::set_enabled(true);
  obs::event_log().clear();
  Server server(small_server());
  const Json compiled = Json::parse(server.handle(
      R"({"id":1,"method":"compile","params":{"design":"verilog_opt2"}})"));
  ASSERT_TRUE(compiled.find("ok")->as_bool());
  const std::string trace_id = compiled.find("trace_id")->as_string();

  const Json result = call_ok(
      server, R"({"method":"trace","params":{"trace_id":")" + trace_id +
                  R"("}})");
  EXPECT_TRUE(result.find("events_recorded")->as_bool());
  EXPECT_EQ(result.find("trace_id")->as_string(), trace_id);

  // The summary names the request; the correlated events show its guts
  // (admission, cache lookup, compile, per-pass progress, completion).
  const Json& requests = *result.find("requests");
  ASSERT_EQ(requests.size(), 1u);
  EXPECT_EQ(requests[0].find("method")->as_string(), "compile");
  EXPECT_EQ(requests[0].find("design")->as_string(), "verilog_opt2");
  EXPECT_EQ(requests[0].find("outcome")->as_string(), "ok");
  EXPECT_GE(requests[0].find("total_ms")->as_number(), 0.0);

  const Json& events = *result.find("events");
  ASSERT_GT(events.size(), 0u);
  bool saw_request = false, saw_cache = false, saw_compile = false;
  for (size_t i = 0; i < events.size(); ++i) {
    const std::string name = events[i].find("name")->as_string();
    saw_request |= name == "svc.request";
    saw_cache |= name == "svc.cache.lookup";
    saw_compile |= name == "tools.compile";
    EXPECT_EQ(events[i].find("trace_id")->as_string(), trace_id);
  }
  EXPECT_TRUE(saw_request);
  EXPECT_TRUE(saw_cache);
  EXPECT_TRUE(saw_compile);

  // Without a trace_id filter: newest-first summaries of recent requests.
  const Json all = call_ok(server, R"({"method":"trace"})");
  EXPECT_GE(all.find("requests")->size(), 2u);
  EXPECT_EQ(all.find("events"), nullptr);
  obs::set_enabled(false);
  obs::registry().reset();
}

TEST(Server, TraceMethodRejectsMalformedTraceIds) {
  Server server(small_server());
  EXPECT_EQ(error_code_of(server,
                          R"({"method":"trace","params":{"trace_id":42}})"),
            "invalid_request");
  EXPECT_EQ(
      error_code_of(server,
                    R"({"method":"trace","params":{"trace_id":"nope!"}})"),
      "invalid_request");
  EXPECT_EQ(error_code_of(server,
                          R"({"method":"trace","params":{"limit":0}})"),
            "invalid_request");
  // A well-formed id that matches nothing is an empty answer, not an error.
  const Json result = call_ok(
      server,
      R"({"method":"trace","params":{"trace_id":"00000000000000ff"}})");
  EXPECT_EQ(result.find("requests")->size(), 0u);
}

TEST(Server, StatsReportsEventLogAndRecentRequests) {
  Server server(small_server());
  call_ok(server, R"({"method":"ping"})");
  const Json result = call_ok(server, R"({"method":"stats"})");
  const Json* events = result.find("events");
  ASSERT_NE(events, nullptr);
  EXPECT_GE(events->find("capacity")->as_int(), 1);
  EXPECT_GE(events->find("total")->as_int(), 0);
  EXPECT_GE(events->find("dropped")->as_int(), 0);
  EXPECT_GE(events->find("held")->as_int(), 0);
  EXPECT_GE(result.find("recent_requests")->as_int(), 1);
}

TEST(Server, StatsReportsBatchUtilizationWithMetricsOn) {
  obs::set_enabled(true);
  Server server(small_server());
  // A lane-batched campaign (lanes=4 over 8 sites, one refilling streaming
  // sweep) moves the process-wide batch counters the stats method passes
  // through.
  call_ok(server,
          R"({"method":"campaign","params":{"design":"verilog_opt2",)"
          R"("sites":8,"seed":7,"lanes":4}})");
  const Json result = call_ok(server, R"({"method":"stats"})");
  obs::set_enabled(false);
  const Json* batch = result.find("batch");
  ASSERT_NE(batch, nullptr) << "stats has no batch block under metrics";
  EXPECT_GE(batch->find("sweeps")->as_int(), 1);
  EXPECT_GE(batch->find("lane_runs")->as_int(), 8);
  EXPECT_GE(batch->find("lanes_masked")->as_int(), 0);
}

TEST(Server, CompileAcceptsSchedulerAndNarrowingKnobs) {
  Server server(small_server());
  // Pipelining a raw combinational kernel through the service matches the
  // DSE flows: stages > 0 schedules before the canonical compile pipeline.
  const Json piped = call_ok(
      server, R"({"method":"compile","params":{"design":"idct.rtl_kernel",)"
              R"("stages":4,"objective":"regmin","retime":true}})");
  EXPECT_EQ(piped.find("stages")->as_int(), 4);
  EXPECT_EQ(piped.find("objective")->as_string(), "regmin");
  EXPECT_GE(piped.find("latency")->as_int(), 1);
  EXPECT_LE(piped.find("latency")->as_int(), 4);
  EXPECT_GT(piped.find("pipeline_regs")->as_int(), 0);
  // Narrowing off is the pre-rewrite pipeline; a combinational request
  // reports no scheduler fields.
  const Json wide = call_ok(
      server, R"({"method":"compile","params":{"design":"idct.rtl_kernel",)"
              R"("narrow":false}})");
  EXPECT_GT(wide.find("node_count")->as_int(), 0);
  EXPECT_EQ(wide.find("stages"), nullptr);
  // The two configurations are distinct cache entries.
  EXPECT_NE(piped.find("key")->as_string(), wide.find("key")->as_string());
}

TEST(Server, SchedulerKnobRejectsBadValues) {
  Server server(small_server());
  // Unknown objective, out-of-range stages, wrong-typed knobs: each is the
  // client's mistake, never an internal error.
  for (const char* params :
       {R"({"design":"idct.rtl_kernel","stages":2,"objective":"fastest"})",
        R"({"design":"idct.rtl_kernel","stages":100})",
        R"({"design":"idct.rtl_kernel","stages":-1})",
        R"({"design":"idct.rtl_kernel","stages":2,"objective":42})",
        R"({"design":"idct.rtl_kernel","stages":2,"retime":1})",
        R"({"design":"idct.rtl_kernel","narrow":"wide"})",
        // Pipelining a sequential design is impossible, not a server fault.
        R"({"design":"verilog_initial","stages":2})"}) {
    const std::string line =
        std::string(R"({"method":"compile","params":)") + params + '}';
    EXPECT_EQ(error_code_of(server, line), "invalid_request") << params;
  }
}

TEST(Server, DseHonorsTheNarrowKnob) {
  Server server(small_server());
  const Json result = call_ok(
      server,
      R"({"method":"dse","params":{"flow":"verilog","limit":1,"narrow":false}})");
  ASSERT_GE(result.find("points")->size(), 1u);
  EXPECT_GT((*result.find("points"))[0].find("quality")->as_number(), 0.0);
  EXPECT_EQ(error_code_of(server,
                          R"({"method":"dse","params":)"
                          R"({"flow":"verilog","narrow":"wide"}})"),
            "invalid_request");
}

TEST(Server, StatsReportsNarrowPassCountersWithMetricsOn) {
  obs::set_enabled(true);
  Server server(small_server());
  // A default compile runs the narrow pass at least once; the stats method
  // passes its rewrite counters through.
  call_ok(server,
          R"({"method":"compile","params":{"design":"fir16.rtl_comb"}})");
  const Json result = call_ok(server, R"({"method":"stats"})");
  obs::set_enabled(false);
  const Json* passes = result.find("passes");
  ASSERT_NE(passes, nullptr) << "stats has no passes block under metrics";
  const Json* narrow = passes->find("narrow");
  ASSERT_NE(narrow, nullptr);
  EXPECT_GE(narrow->find("runs")->as_int(), 1);
  EXPECT_GE(narrow->find("changes")->as_int(), 0);
  EXPECT_GE(narrow->find("ns")->as_int(), 0);
}

TEST(Server, RecentRequestRingIsBounded) {
  ServerOptions options = small_server();
  options.recent_requests = 4;
  Server server(options);
  for (int i = 0; i < 10; ++i) call_ok(server, R"({"method":"ping"})");
  const std::vector<Server::RequestRecord> recent = server.recent_requests();
  ASSERT_EQ(recent.size(), 4u);
  for (const Server::RequestRecord& r : recent) {
    EXPECT_EQ(r.method, "ping");
    EXPECT_EQ(r.outcome, "ok");
    EXPECT_NE(r.trace_id, 0u);
  }
}

TEST(Server, ServeRunsLineProtocolInOrder) {
  Server server(small_server());
  std::istringstream in(
      "{\"id\":1,\"method\":\"ping\"}\n"
      "not json\n"
      "{\"id\":2,\"method\":\"compile\","
      "\"params\":{\"design\":\"verilog_opt1\"}}\n"
      "{\"id\":3,\"method\":\"shutdown\"}\n");
  std::ostringstream out;
  server.serve(in, out);

  std::vector<Json> responses;
  std::istringstream lines(out.str());
  std::string line;
  while (std::getline(lines, line)) responses.push_back(Json::parse(line));
  ASSERT_EQ(responses.size(), 4u);
  EXPECT_EQ(responses[0].find("id")->as_int(), 1);
  EXPECT_TRUE(responses[0].find("ok")->as_bool());
  EXPECT_FALSE(responses[1].find("ok")->as_bool());
  EXPECT_EQ(responses[2].find("id")->as_int(), 2);
  EXPECT_TRUE(responses[2].find("ok")->as_bool());
  EXPECT_EQ(responses[3].find("id")->as_int(), 3);
}

}  // namespace
}  // namespace hlshc::svc
