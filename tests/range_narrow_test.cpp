// Interval-analysis edge cases and narrow-pass property tests.
//
// RangeAnalysis is the basis for an *irreversible* rewrite (the narrow
// pass), so its corner behaviour — wrap-around fallback, register-feedback
// widening, saturation — is pinned here, and the pass itself is checked to
// preserve behaviour not just on the scalar engines (prop_netlist_test
// covers those) but on the lane-batched simulator at every lane shape the
// campaigns use.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/rng.hpp"
#include "netlist/ir.hpp"
#include "netlist/passes.hpp"
#include "netlist/range.hpp"
#include "sim/batch.hpp"
#include "sim/engine.hpp"

namespace hlshc::netlist {
namespace {

// ---- Interval arithmetic ---------------------------------------------------

TEST(Interval, FullPointJoinFitsAndMinWidth) {
  const Interval full4 = Interval::full(4);
  EXPECT_EQ(full4.lo, -8);
  EXPECT_EQ(full4.hi, 7);
  EXPECT_TRUE(full4.fits(4));
  EXPECT_EQ(full4.min_width(), 4);

  EXPECT_EQ(Interval::point(5).lo, 5);
  EXPECT_EQ(Interval::point(5).hi, 5);
  EXPECT_TRUE(Interval::point(5).fits(4));
  EXPECT_FALSE(Interval::point(8).fits(4));

  const Interval joined = Interval::point(-3).join(Interval::point(10));
  EXPECT_EQ(joined.lo, -3);
  EXPECT_EQ(joined.hi, 10);

  EXPECT_EQ((Interval{0, 1}).min_width(), 2);
  EXPECT_EQ((Interval{-1, 0}).min_width(), 1);
  EXPECT_EQ((Interval{-16, 14}).min_width(), 5);
  EXPECT_EQ((Interval{3, 10}).min_width(), 5);
}

// ---- transfer-function edges ----------------------------------------------

TEST(RangeAnalysis, BoundedAddNarrowsBelowDeclaredWidth) {
  Design d("add_narrow");
  NodeId a = d.input("a", 4);
  NodeId b = d.input("b", 4);
  NodeId s = d.add(a, b, 32);
  d.output("s", s);
  d.validate();

  RangeAnalysis ra(d);
  EXPECT_EQ(ra.range(a).lo, -8);
  EXPECT_EQ(ra.range(a).hi, 7);
  EXPECT_EQ(ra.range(s).lo, -16);
  EXPECT_EQ(ra.range(s).hi, 14);
  EXPECT_EQ(ra.effective_width(s), 5);
}

TEST(RangeAnalysis, CompareAndMuxCarryTightBounds) {
  Design d("cmp_mux");
  NodeId a = d.input("a", 8);
  NodeId b = d.input("b", 8);
  NodeId c = d.slt(a, b);
  NodeId m = d.mux(c, d.constant(32, 3), d.constant(32, 10), 32);
  d.output("m", m);
  d.validate();

  RangeAnalysis ra(d);
  // Comparisons are 1-bit signed: true is all-ones, i.e. -1.
  EXPECT_EQ(ra.range(c).lo, -1);
  EXPECT_EQ(ra.range(c).hi, 0);
  EXPECT_EQ(ra.range(m).lo, 3);
  EXPECT_EQ(ra.range(m).hi, 10);
  EXPECT_EQ(ra.effective_width(m), 5);
}

TEST(RangeAnalysis, ShiftBoundsFollowTheShiftAmount) {
  Design d("shifts");
  NodeId a = d.input("a", 4);  // [-8, 7]
  NodeId l = d.shl(a, 2, 32);  // [-32, 28]
  NodeId r = d.ashr(a, 1, 4);  // [-4, 3]
  d.output("l", l);
  d.output("r", r);
  d.validate();

  RangeAnalysis ra(d);
  EXPECT_EQ(ra.range(l).lo, -32);
  EXPECT_EQ(ra.range(l).hi, 28);
  EXPECT_EQ(ra.effective_width(l), 6);
  EXPECT_EQ(ra.range(r).lo, -4);
  EXPECT_EQ(ra.range(r).hi, 3);
  EXPECT_EQ(ra.effective_width(r), 3);
}

TEST(RangeAnalysis, WrapAroundFallsBackToDeclaredFullRange) {
  // The sum of two full-range 8-bit values does not fit 8 bits, so the
  // result wraps: the only sound interval is the declared width's own.
  Design d("wrap");
  NodeId a = d.input("a", 8);
  NodeId b = d.input("b", 8);
  NodeId s = d.add(a, b, 8);
  d.output("s", s);
  d.validate();

  RangeAnalysis ra(d);
  EXPECT_EQ(ra.range(s).lo, -128);
  EXPECT_EQ(ra.range(s).hi, 127);
  EXPECT_EQ(ra.effective_width(s), 8);
}

TEST(RangeAnalysis, UnboundedRegisterFeedbackWidensToDeclaredWidth) {
  // A free-running accumulator has no invariant tighter than its declared
  // width: widening must terminate there instead of iterating forever.
  Design d("acc");
  NodeId r = d.reg(16, 0, "r");
  d.set_reg_next(r, d.add(r, d.constant(16, 1), 16));
  d.output("r", r);
  d.validate();

  RangeAnalysis ra(d);
  EXPECT_EQ(ra.range(r).hi, Interval::full(16).hi);
  EXPECT_EQ(ra.effective_width(r), 16);
}

TEST(RangeAnalysis, BoundedRegisterFeedbackStaysSound) {
  // A saturating counter (counts to 10, then holds). Widening may
  // overshoot, but the fixpoint must contain every reachable value.
  Design d("ctr");
  NodeId r = d.reg(8, 0, "r");
  NodeId bumped = d.add(r, d.constant(8, 1), 8);
  d.set_reg_next(r, d.mux(d.slt(r, d.constant(8, 10)), bumped, r, 8));
  d.output("r", r);
  d.validate();

  RangeAnalysis ra(d);
  EXPECT_LE(ra.range(r).lo, 0);
  EXPECT_GE(ra.range(r).hi, 10);
}

TEST(RangeAnalysis, SaturatedIntervalsNeverJustifyARewrite) {
  // 2^29 * 2^29 overflows the +-2^56 clamp: the interval saturates. The
  // clamped bound still yields a (lossy) effective width for cost
  // discounts, but the narrow pass must refuse to rewrite on it — the
  // true range may be wider than the clamp.
  Design d("sat");
  NodeId a = d.input("a", 30);
  NodeId m = d.mul(a, a, 62);
  d.output("m", m);
  d.validate();

  RangeAnalysis ra(d);
  ASSERT_TRUE(ra.range(m).saturated());
  EXPECT_LT(ra.effective_width(m), 62);  // the lossy cost-only width

  Design narrowed = d;
  narrow_widths(narrowed);
  narrowed.validate();
  bool found = false;
  for (size_t i = 0; i < narrowed.node_count(); ++i) {
    const Node& n = narrowed.node(static_cast<NodeId>(i));
    if (n.op != Op::Mul) continue;
    found = true;
    EXPECT_EQ(n.width, 62) << "narrow rewrote a saturated node";
  }
  EXPECT_TRUE(found);
}

// ---- narrow preserves behaviour at every lane count ------------------------

/// Random sequential design: the same shape prop_netlist_test fuzzes the
/// pass registry with — arithmetic bias, register feedback, slices.
Design random_design(uint64_t seed, int ops = 50) {
  SplitMix64 rng(seed);
  Design d("rand_" + std::to_string(seed));
  std::vector<NodeId> pool;
  std::vector<NodeId> regs;
  int n_inputs = 2 + static_cast<int>(rng.next() % 3);
  for (int i = 0; i < n_inputs; ++i)
    pool.push_back(d.input("in" + std::to_string(i),
                           4 + static_cast<int>(rng.next() % 13)));
  for (int i = 0; i < 2; ++i) {
    NodeId r = d.reg(8 + static_cast<int>(rng.next() % 9),
                     static_cast<int64_t>(rng.next_in(-100, 100)),
                     "r" + std::to_string(i));
    regs.push_back(r);
    pool.push_back(r);
  }
  pool.push_back(d.constant(8, rng.next_in(-128, 127)));
  auto pick = [&]() {
    return pool[static_cast<size_t>(rng.next() % pool.size())];
  };
  for (int i = 0; i < ops; ++i) {
    int w = 2 + static_cast<int>(rng.next() % 23);
    NodeId a = pick(), b = pick();
    switch (rng.next() % 10) {
      case 0: pool.push_back(d.add(a, b, w)); break;
      case 1: pool.push_back(d.sub(a, b, w)); break;
      case 2: pool.push_back(d.mul(a, b, std::min(w + 16, 40))); break;
      case 3: pool.push_back(d.band(a, b, w)); break;
      case 4: pool.push_back(d.bxor(a, b, w)); break;
      case 5: pool.push_back(d.shl(a, static_cast<int>(rng.next() % 6), w));
        break;
      case 6: pool.push_back(d.ashr(a, static_cast<int>(rng.next() % 6), w));
        break;
      case 7: pool.push_back(d.mux(d.slt(a, b), a, b, w)); break;
      case 8: pool.push_back(d.sext(a, w)); break;
      default: pool.push_back(d.neg(a, w)); break;
    }
  }
  for (NodeId r : regs)
    d.set_reg_next(r, d.sext(pick(), d.node(r).width));
  for (int i = 0; i < 4; ++i)
    d.output("out" + std::to_string(i),
             pool[pool.size() - 1 - static_cast<size_t>(i)]);
  d.validate();
  return d;
}

class NarrowedNetlist : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NarrowedNetlist, BatchLanesMatchScalarOriginalAtEveryLaneCount) {
  const Design original = random_design(GetParam());
  Design narrowed = original;
  narrow_widths(narrowed);
  narrowed.validate();

  // The rewrite rebuilds the netlist, so node ids shift: resolve the
  // narrowed design's ports by name.
  std::map<std::string, NodeId> nin, nout;
  for (NodeId in : narrowed.inputs()) nin[narrowed.node(in).name] = in;
  for (NodeId out : narrowed.outputs()) nout[narrowed.node(out).name] = out;

  // Every lane of the narrowed batch must replay the un-narrowed scalar
  // run bit-for-bit: lane 1 (scalar-shaped), an odd count (generic
  // kernel), and 8 (the specialized kernel the campaigns use).
  const int kCycles = 24;
  for (int lanes : {1, 3, 8}) {
    sim::BatchSimulator batch(narrowed, lanes);
    std::vector<std::unique_ptr<sim::Engine>> scalars;
    std::vector<SplitMix64> rngs;
    for (int l = 0; l < lanes; ++l) {
      scalars.push_back(
          sim::make_engine(original, sim::EngineKind::kCompiled));
      scalars.back()->reset();
      rngs.emplace_back(GetParam() * 977 + static_cast<uint64_t>(l));
    }
    batch.reset_all();
    for (int t = 0; t < kCycles; ++t) {
      for (int l = 0; l < lanes; ++l)
        for (NodeId in : original.inputs()) {
          const int64_t v = static_cast<int64_t>(rngs[static_cast<size_t>(l)].next());
          batch.poke_input(l, nin.at(original.node(in).name), v);
          scalars[static_cast<size_t>(l)]->poke(in, v);
        }
      batch.eval_all();
      for (int l = 0; l < lanes; ++l) {
        scalars[static_cast<size_t>(l)]->eval();
        for (NodeId out : original.outputs())
          EXPECT_EQ(batch.value(l, nout.at(original.node(out).name)).to_int64(),
                    scalars[static_cast<size_t>(l)]->value(out).to_int64())
              << "seed " << GetParam() << " lanes " << lanes << " lane " << l
              << " cycle " << t << " output " << original.node(out).name;
      }
      batch.step_all();
      for (int l = 0; l < lanes; ++l) scalars[static_cast<size_t>(l)]->step();
    }
  }
}

TEST_P(NarrowedNetlist, EffectiveWidthsAreSoundOverSampledTraces) {
  // Every value the simulator ever produces must sit inside the interval
  // the analysis claimed for its node.
  const Design d = random_design(GetParam());
  RangeAnalysis ra(d);
  std::unique_ptr<sim::Engine> eng =
      sim::make_engine(d, sim::EngineKind::kInterpreter);
  eng->reset();
  SplitMix64 rng(GetParam() * 31 + 7);
  for (int t = 0; t < 24; ++t) {
    for (NodeId in : d.inputs())
      eng->poke(in, static_cast<int64_t>(rng.next()));
    eng->eval();
    for (size_t i = 0; i < d.node_count(); ++i) {
      const NodeId id = static_cast<NodeId>(i);
      const Node& n = d.node(id);
      if (n.op == Op::Output) continue;
      const int64_t v = eng->value(id).to_int64();
      const Interval& r = ra.range(id);
      EXPECT_GE(v, r.lo) << "node " << i << " (" << n.name << ") cycle " << t;
      EXPECT_LE(v, r.hi) << "node " << i << " (" << n.name << ") cycle " << t;
    }
    eng->step();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NarrowedNetlist,
                         ::testing::Range<uint64_t>(50, 62));

}  // namespace
}  // namespace hlshc::netlist
