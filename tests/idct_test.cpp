// Unit + property tests for the IDCT algorithm library: the fixed-point
// Chen-Wang implementation, the floating-point reference, and the
// IEEE 1180-1990 compliance harness.
#include "idct/chenwang.hpp"
#include "idct/ieee1180.hpp"
#include "idct/reference.hpp"

#include <gtest/gtest.h>

#include "base/rng.hpp"

namespace hlshc::idct {
namespace {

Block random_coeffs(SplitMix64& rng, int lo = kCoeffMin, int hi = kCoeffMax) {
  Block b{};
  for (auto& v : b) v = static_cast<int32_t>(rng.next_in(lo, hi));
  return b;
}

TEST(ChenWang, ZeroBlockGivesZeroBlock) {
  Block b{};
  idct_2d(b);
  EXPECT_EQ(b, Block{});
  Block s{};
  idct_2d_straight(s);
  EXPECT_EQ(s, Block{});
}

TEST(ChenWang, DcOnlyBlock) {
  // A pure-DC coefficient block decodes to a flat image: F(0,0)=64 gives
  // round(64/8) = 8 in every sample.
  Block b{};
  b[0] = 64;
  idct_2d(b);
  for (int32_t v : b) EXPECT_EQ(v, 8);
}

TEST(ChenWang, OutputAlwaysInNineBitRange) {
  SplitMix64 rng(7);
  for (int i = 0; i < 2000; ++i) {
    Block b = random_coeffs(rng);
    idct_2d(b);
    EXPECT_TRUE(in_range(b, kSampleMin, kSampleMax));
  }
}

TEST(ChenWang, RowShortcutEqualsStraightLine) {
  // Property: the zero-AC software shortcut is bit-identical to the
  // straight-line butterfly hardware evaluates.
  SplitMix64 rng(11);
  for (int i = 0; i < 5000; ++i) {
    int32_t row_a[8], row_b[8];
    bool dc_only = (i % 4 == 0);
    for (int c = 0; c < 8; ++c) {
      int32_t v = static_cast<int32_t>(rng.next_in(kCoeffMin, kCoeffMax));
      if (dc_only && c > 0) v = 0;
      row_a[c] = row_b[c] = v;
    }
    idct_row(row_a);
    idct_row_straight(row_b);
    for (int c = 0; c < 8; ++c) EXPECT_EQ(row_a[c], row_b[c]);
  }
}

TEST(ChenWang, ColShortcutEqualsStraightLine) {
  SplitMix64 rng(13);
  for (int i = 0; i < 5000; ++i) {
    int32_t col_a[64] = {}, col_b[64] = {};
    bool dc_only = (i % 4 == 0);
    for (int r = 0; r < 8; ++r) {
      // Column inputs are row-pass results; keep them in the reachable
      // range (see rtl/units.hpp's 20-bit storage bound).
      int32_t v = static_cast<int32_t>(rng.next_in(-170000, 170000));
      if (dc_only && r > 0) v = 0;
      col_a[8 * r] = col_b[8 * r] = v;
    }
    idct_col(col_a);
    idct_col_straight(col_b);
    for (int r = 0; r < 8; ++r) EXPECT_EQ(col_a[8 * r], col_b[8 * r]);
  }
}

TEST(ChenWang, FullTransformShortcutEqualsStraight) {
  SplitMix64 rng(17);
  for (int i = 0; i < 1000; ++i) {
    Block a = random_coeffs(rng);
    Block b = a;
    idct_2d(a);
    idct_2d_straight(b);
    EXPECT_EQ(a, b);
  }
}

TEST(Reference, ForwardThenInverseIsNearIdentity) {
  // fDCT followed by the reference IDCT must reproduce spatial data almost
  // exactly (rounding can move a sample by at most 1).
  SplitMix64 rng(23);
  for (int i = 0; i < 200; ++i) {
    Block spatial{};
    for (auto& v : spatial) v = static_cast<int32_t>(rng.next_in(-256, 255));
    Block rec = idct_reference(forward_dct_reference(spatial));
    for (int k = 0; k < kBlockSize; ++k)
      EXPECT_LE(std::abs(rec[static_cast<size_t>(k)] -
                         spatial[static_cast<size_t>(k)]),
                1);
  }
}

TEST(Reference, LinearityOfIdctOnSmallInputs) {
  // IDCT(a) + IDCT(-a) == 0 up to rounding for the float reference.
  SplitMix64 rng(29);
  for (int i = 0; i < 100; ++i) {
    Block a{};
    for (auto& v : a) v = static_cast<int32_t>(rng.next_in(-100, 100));
    Block neg;
    for (int k = 0; k < kBlockSize; ++k)
      neg[static_cast<size_t>(k)] = -a[static_cast<size_t>(k)];
    Block pa = idct_reference(a);
    Block pn = idct_reference(neg);
    for (int k = 0; k < kBlockSize; ++k)
      EXPECT_LE(std::abs(pa[static_cast<size_t>(k)] +
                         pn[static_cast<size_t>(k)]),
                1);
  }
}

TEST(Ieee1180, ChenWangPassesQuickSuite) {
  // 1000 blocks per case keeps the test fast; the bench runs the full
  // 10,000-block standard procedure.
  auto suite = run_compliance_suite(
      [](const Block& in) {
        Block b = in;
        idct_2d(b);
        return b;
      },
      1000);
  ASSERT_EQ(suite.size(), 6u);
  for (const auto& r : suite)
    EXPECT_TRUE(r.pass) << "range (-" << r.config.range_high << ','
                        << r.config.range_low << ") sign " << r.config.sign
                        << ": " << r.failure;
}

TEST(Ieee1180, BrokenIdctIsRejected) {
  // An implementation that truncates instead of rounding fails compliance.
  auto broken = [](const Block& in) {
    Block b = in;
    idct_2d(b);
    for (auto& v : b) v = (v / 2) * 2;  // destroy the LSB
    return b;
  };
  auto suite = run_compliance_suite(broken, 200);
  EXPECT_FALSE(all_pass(suite));
}

TEST(Ieee1180, ZeroInZeroOutDetectsDcBias) {
  auto biased = [](const Block& in) {
    Block b = in;
    idct_2d(b);
    b[0] += 1;
    return b;
  };
  ComplianceCase c;
  c.blocks = 10;
  auto r = run_compliance_case(biased, c);
  EXPECT_FALSE(r.zero_in_zero_out);
  EXPECT_FALSE(r.pass);
}

TEST(Block, Helpers) {
  Block b{};
  at(b, 2, 3) = 42;
  EXPECT_EQ(b[19], 42);
  EXPECT_TRUE(in_range(b, 0, 42));
  EXPECT_FALSE(in_range(b, 0, 41));
  EXPECT_NE(to_string(b).find("42"), std::string::npos);
  EXPECT_EQ(iclip(-1000), -256);
  EXPECT_EQ(iclip(1000), 255);
  EXPECT_EQ(iclip(12), 12);
}

}  // namespace
}  // namespace hlshc::idct
