// Property-based tests over randomly generated netlists: the optimization
// passes, the module instantiation splice and the Verilog emitter must all
// preserve (or correctly describe) simulated behaviour. Parameterized over
// generator seeds, so every instance is a distinct random circuit.
#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "framework/arithgen.hpp"
#include "netlist/instantiate.hpp"
#include "netlist/ir.hpp"
#include "netlist/pass_manager.hpp"
#include "netlist/passes.hpp"
#include "netlist/verilog.hpp"
#include "sim/engine.hpp"
#include "sim/simulator.hpp"

namespace hlshc::netlist {
namespace {

/// Random DAG builder: a few inputs, a pile of random ops (with a bias
/// toward arithmetic), a couple of registers with feedback, and every
/// dangling value exposed as an output.
Design random_design(uint64_t seed, int ops = 60) {
  SplitMix64 rng(seed);
  Design d("rand_" + std::to_string(seed));
  std::vector<NodeId> pool;
  std::vector<NodeId> regs;

  int n_inputs = 2 + static_cast<int>(rng.next() % 4);
  for (int i = 0; i < n_inputs; ++i)
    pool.push_back(
        d.input("in" + std::to_string(i), 4 + static_cast<int>(rng.next() % 13)));
  for (int i = 0; i < 2; ++i) {
    NodeId r = d.reg(8 + static_cast<int>(rng.next() % 9),
                     static_cast<int64_t>(rng.next_in(-100, 100)),
                     "r" + std::to_string(i));
    regs.push_back(r);
    pool.push_back(r);
  }
  pool.push_back(d.constant(8, rng.next_in(-128, 127)));
  pool.push_back(d.constant(12, rng.next_in(-2048, 2047)));

  auto pick = [&]() {
    return pool[static_cast<size_t>(rng.next() % pool.size())];
  };
  for (int i = 0; i < ops; ++i) {
    int w = 2 + static_cast<int>(rng.next() % 23);
    NodeId a = pick(), b = pick();
    NodeId v;
    switch (rng.next() % 12) {
      case 0: v = d.add(a, b, w); break;
      case 1: v = d.sub(a, b, w); break;
      case 2: v = d.mul(a, b, std::min(w + 16, 40)); break;
      case 3: v = d.band(a, b, w); break;
      case 4: v = d.bor(a, b, w); break;
      case 5: v = d.bxor(a, b, w); break;
      case 6: v = d.shl(a, static_cast<int>(rng.next() % 6), w); break;
      case 7: v = d.ashr(a, static_cast<int>(rng.next() % 6), w); break;
      case 8: v = d.mux(d.slt(a, b), a, b, w); break;
      case 9: v = d.sext(a, w); break;
      case 10: {
        int aw = d.node(a).width;
        int lo = static_cast<int>(rng.next() % static_cast<uint64_t>(aw));
        v = d.slice(a, aw - 1, lo);
        break;
      }
      default: v = d.neg(a, w); break;
    }
    pool.push_back(v);
  }
  // Registers get arbitrary feedback (width-adapted).
  for (NodeId r : regs)
    d.set_reg_next(r, d.sext(pick(), d.node(r).width));
  // Expose the last few values.
  for (int i = 0; i < 4; ++i)
    d.output("out" + std::to_string(i),
             pool[pool.size() - 1 - static_cast<size_t>(i)]);
  d.validate();
  return d;
}

/// Runs `cycles` with pseudorandom inputs; returns all output values seen.
std::vector<int64_t> run_trace(const Design& d, uint64_t input_seed,
                               int cycles = 20) {
  sim::Simulator sim(d);
  SplitMix64 rng(input_seed);
  std::vector<int64_t> trace;
  for (int t = 0; t < cycles; ++t) {
    for (NodeId in : d.inputs()) {
      const Node& n = d.node(in);
      sim.set_input(n.name, static_cast<int64_t>(rng.next()) &
                                ((1LL << (n.width - 1)) - 1));
    }
    sim.eval();
    for (NodeId out : d.outputs())
      trace.push_back(sim.value(out).to_int64());
    sim.step();
  }
  return trace;
}

/// Engine-kind-generic trace (interpreter or compiled): `cycles` with
/// pseudorandom full-width inputs; returns all output values seen.
std::vector<int64_t> run_engine_trace(const Design& d, sim::EngineKind kind,
                                      uint64_t input_seed, int cycles = 20) {
  std::unique_ptr<sim::Engine> eng = sim::make_engine(d, kind);
  eng->reset();
  SplitMix64 rng(input_seed);
  std::vector<int64_t> trace;
  for (int t = 0; t < cycles; ++t) {
    for (NodeId in : d.inputs()) {
      const Node& n = d.node(in);
      eng->set_input(n.name,
                     BitVec(n.width, static_cast<int64_t>(rng.next())));
    }
    eng->eval();
    for (NodeId out : d.outputs())
      trace.push_back(eng->output(d.node(out).name).to_int64());
    eng->step();
  }
  return trace;
}

class RandomNetlist : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomNetlist, ConstantFoldingPreservesBehaviour) {
  Design original = random_design(GetParam());
  Design folded = original;
  fold_constants(folded);
  EXPECT_EQ(run_trace(original, GetParam() * 3 + 1),
            run_trace(folded, GetParam() * 3 + 1));
}

TEST_P(RandomNetlist, OptimizePreservesBehaviour) {
  Design original = random_design(GetParam());
  Design optimized = optimize(original);
  EXPECT_LE(optimized.node_count(), original.node_count());
  EXPECT_EQ(run_trace(original, GetParam() * 7 + 5),
            run_trace(optimized, GetParam() * 7 + 5));
}

TEST_P(RandomNetlist, EveryRegisteredPassPreservesBehaviour) {
  Design original = random_design(GetParam());
  for (const std::string& pass : registered_pass_names()) {
    Design transformed = original;
    make_pass(pass)->run(transformed);
    transformed.validate();
    for (sim::EngineKind kind :
         {sim::EngineKind::kInterpreter, sim::EngineKind::kCompiled}) {
      EXPECT_EQ(run_engine_trace(original, kind, GetParam() * 13 + 2),
                run_engine_trace(transformed, kind, GetParam() * 13 + 2))
          << "pass '" << pass << "' on " << sim::engine_kind_name(kind)
          << " engine";
    }
  }
}

TEST_P(RandomNetlist, FullPipelinePreservesBehaviour) {
  Design original = random_design(GetParam());
  PassStats stats;
  Design compiled = default_pipeline(/*strength_reduce=*/true)
                        .run(original, &stats);
  compiled.validate();
  EXPECT_GE(stats.iterations, 1);
  for (sim::EngineKind kind :
       {sim::EngineKind::kInterpreter, sim::EngineKind::kCompiled}) {
    EXPECT_EQ(run_engine_trace(original, kind, GetParam() * 17 + 3),
              run_engine_trace(compiled, kind, GetParam() * 17 + 3))
        << "full pipeline on " << sim::engine_kind_name(kind) << " engine";
  }
}

TEST_P(RandomNetlist, PipelinePreservesArithgenDotProducts) {
  // Dot products with random constants: the strength-reduction / CSE
  // stress case (every multiplier is already an explicit shift-add tree).
  SplitMix64 rng(GetParam() * 19 + 7);
  std::vector<int64_t> constants;
  for (int i = 0; i < 4; ++i) constants.push_back(rng.next_in(-2048, 2047));
  framework::ArithGenOptions opts;
  opts.csd = (GetParam() % 2) == 0;
  Design original = framework::generate_dot_product(
      constants, opts, "dp_" + std::to_string(GetParam()));
  Design compiled = default_pipeline(/*strength_reduce=*/true).run(original);
  compiled.validate();
  EXPECT_LE(compiled.node_count(), original.node_count());
  for (sim::EngineKind kind :
       {sim::EngineKind::kInterpreter, sim::EngineKind::kCompiled}) {
    EXPECT_EQ(run_engine_trace(original, kind, GetParam() + 23),
              run_engine_trace(compiled, kind, GetParam() + 23));
  }
}

TEST_P(RandomNetlist, InstantiationPreservesBehaviour) {
  Design sub = random_design(GetParam());
  // Host: same ports, sub spliced in between.
  Design host("host");
  std::map<std::string, NodeId> bindings;
  for (NodeId in : sub.inputs()) {
    const Node& n = sub.node(in);
    bindings[n.name] = host.input(n.name, n.width);
  }
  auto outs = instantiate(host, sub, bindings);
  for (auto& [name, node] : outs) host.output(name, node);
  host.validate();
  EXPECT_EQ(run_trace(sub, GetParam() + 11), run_trace(host, GetParam() + 11));
}

TEST_P(RandomNetlist, TopoOrderIsConsistent) {
  Design d = random_design(GetParam());
  auto order = d.topo_order();
  ASSERT_EQ(order.size(), d.node_count());
  std::vector<int> pos(d.node_count());
  for (size_t i = 0; i < order.size(); ++i)
    pos[static_cast<size_t>(order[i])] = static_cast<int>(i);
  for (size_t i = 0; i < d.node_count(); ++i) {
    const Node& n = d.node(static_cast<NodeId>(i));
    if (n.op == Op::Reg) continue;
    for (NodeId o : n.operands)
      EXPECT_LT(pos[static_cast<size_t>(o)], pos[i]);
  }
}

TEST_P(RandomNetlist, VerilogEmitterCoversTheDesign) {
  Design d = random_design(GetParam());
  std::string v = emit_verilog(d);
  EXPECT_NE(v.find("module rand_"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  for (NodeId out : d.outputs())
    EXPECT_NE(v.find("assign " + d.node(out).name + " = "),
              std::string::npos);
  // Every register appears in the clocked process.
  EXPECT_NE(v.find("always @(posedge clk)"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomNetlist,
                         ::testing::Range<uint64_t>(1, 25));

}  // namespace
}  // namespace hlshc::netlist
