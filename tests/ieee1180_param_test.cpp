// Parameterized IEEE 1180-1990 sweeps: one test instance per (range, sign)
// case of the standard, on the software model (hardware equivalence is
// covered by the integration suite; the full 10,000-block procedure by
// bench_ieee1180 and examples/conformance).
#include <gtest/gtest.h>

#include "idct/chenwang.hpp"
#include "idct/ieee1180.hpp"

namespace hlshc::idct {
namespace {

struct CaseParam {
  long L, H;
  int sign;
};

class Ieee1180Cases : public ::testing::TestWithParam<CaseParam> {};

TEST_P(Ieee1180Cases, ChenWangPassesEachStandardCase) {
  ComplianceCase c;
  c.range_low = GetParam().L;
  c.range_high = GetParam().H;
  c.sign = GetParam().sign;
  c.blocks = 2000;  // enough for stable statistics, quick in a unit test
  ComplianceResult r = run_compliance_case(
      [](const Block& in) {
        Block b = in;
        idct_2d(b);
        return b;
      },
      c);
  EXPECT_TRUE(r.pass) << r.failure;
  EXPECT_LE(r.peak_error, 1.0);
  EXPECT_TRUE(r.zero_in_zero_out);
}

TEST_P(Ieee1180Cases, StatisticsAreInTheExpectedRegime) {
  ComplianceCase c;
  c.range_low = GetParam().L;
  c.range_high = GetParam().H;
  c.sign = GetParam().sign;
  c.blocks = 1000;
  ComplianceResult r = run_compliance_case(
      [](const Block& in) {
        Block b = in;
        idct_2d(b);
        return b;
      },
      c);
  // The integer IDCT is not bit-identical to the float reference (that
  // would make the standard trivial) but stays an order of magnitude
  // inside the thresholds.
  EXPECT_GT(r.omse, 0.0);
  EXPECT_LT(r.omse, 0.02);
  EXPECT_LT(r.worst_pmse, 0.06);
}

INSTANTIATE_TEST_SUITE_P(
    StandardMatrix, Ieee1180Cases,
    ::testing::Values(CaseParam{256, 255, +1}, CaseParam{256, 255, -1},
                      CaseParam{5, 5, +1}, CaseParam{5, 5, -1},
                      CaseParam{300, 300, +1}, CaseParam{300, 300, -1}),
    [](const ::testing::TestParamInfo<CaseParam>& info) {
      return "L" + std::to_string(info.param.L) + "_H" +
             std::to_string(info.param.H) +
             (info.param.sign > 0 ? "_pos" : "_neg");
    });

TEST(Ieee1180Seeds, DifferentSeedsGiveDifferentBlocksSameVerdict) {
  auto idct = [](const Block& in) {
    Block b = in;
    idct_2d(b);
    return b;
  };
  ComplianceCase a;
  a.blocks = 500;
  a.seed = 1;
  ComplianceCase b = a;
  b.seed = 999;
  ComplianceResult ra = run_compliance_case(idct, a);
  ComplianceResult rb = run_compliance_case(idct, b);
  EXPECT_TRUE(ra.pass);
  EXPECT_TRUE(rb.pass);
  EXPECT_NE(ra.omse, rb.omse);  // genuinely different inputs
}

}  // namespace
}  // namespace hlshc::idct
