// Tests for the mini HLS compiler: frontend (lexer/parser), lowering and
// the DFG interpreter, scheduling invariants, sequential codegen
// correctness through the stream interface, the streaming (pragma) path,
// and the paper's Bambu/Vivado-HLS shapes.
#include "hls/tool.hpp"

#include <gtest/gtest.h>

#include "axis/testbench.hpp"
#include "base/rng.hpp"
#include "hls/ast.hpp"
#include "hls/lexer.hpp"
#include "idct/chenwang.hpp"
#include "sim/simulator.hpp"
#include "synth/synthesize.hpp"
#include "testutil.hpp"

namespace hlshc::hls {
namespace {

using testutil::realistic_coeff_block;
using testutil::software_idct;
using testutil::uniform_coeff_block;

// ---- frontend -----------------------------------------------------------------

TEST(Lexer, TokensAndMacros) {
  auto toks = lex("#define W 42\nint f(int x) { return x * W; }");
  // W expands to the number 42.
  bool found42 = false;
  for (const auto& t : toks)
    if (t.kind == Tok::kNumber && t.value == 42) found42 = true;
  EXPECT_TRUE(found42);
}

TEST(Lexer, CommentsAndOperators) {
  auto toks = lex("/* c1 */ a >>= // nope\n");
  // ">>=" lexes as ">>" "=" in this subset.
  ASSERT_GE(toks.size(), 4u);
  EXPECT_EQ(toks[0].kind, Tok::kIdent);
  EXPECT_EQ(toks[1].kind, Tok::kShr);
  EXPECT_EQ(toks[2].kind, Tok::kAssign);
}

TEST(Lexer, RejectsUnknownCharacters) {
  EXPECT_THROW(lex("int a @ b;"), Error);
}

TEST(Parser, ParsesTheShippedIdctSource) {
  Program prog = parse(idct_source());
  ASSERT_NE(prog.find("idct"), nullptr);
  ASSERT_NE(prog.find("idctrow"), nullptr);
  ASSERT_NE(prog.find("idctcol"), nullptr);
  ASSERT_NE(prog.find("iclip"), nullptr);
  EXPECT_TRUE(prog.find("iclip")->returns_value);
  EXPECT_FALSE(prog.find("idct")->returns_value);
  EXPECT_EQ(prog.find("idct")->params[0].array_size, 64);
}

TEST(Parser, PrecedenceMatchesC) {
  // a + b * c  and shift/ternary nesting.
  Program p = parse("int f(int a, int b, int c) { return a + b * c; }");
  const Expr& e = *p.functions[0].body->stmts[0]->expr;
  ASSERT_EQ(e.kind, Expr::Kind::kBinary);
  EXPECT_EQ(e.op, BinOp::kAdd);
  EXPECT_EQ(e.b->op, BinOp::kMul);
}

TEST(Parser, ReportsSyntaxErrorsWithLine) {
  try {
    parse("int f( { }");
    FAIL() << "expected parse error";
  } catch (const Error& err) {
    EXPECT_NE(std::string(err.what()).find("line 1"), std::string::npos);
  }
}

// ---- lowering -------------------------------------------------------------------

TEST(Lowering, InterpreterMatchesSoftwareIdct) {
  // Realistic (fDCT-derived) inputs: the C source stores row results in a
  // short[] array, which wraps at 16 bits on inputs no decoder produces;
  // the int32 software model does not. See tests/testutil.hpp.
  Program prog = parse(idct_source());
  Dfg dfg = lower(prog, "idct");
  SplitMix64 rng(55);
  for (int iter = 0; iter < 50; ++iter) {
    idct::Block in = realistic_coeff_block(rng);
    std::vector<int32_t> memory(in.begin(), in.end());
    interpret(dfg, memory);
    idct::Block want = software_idct(in);
    for (int i = 0; i < 64; ++i)
      EXPECT_EQ(memory[static_cast<size_t>(i)], want[static_cast<size_t>(i)])
          << iter << ':' << i;
  }
}

TEST(Lowering, FullUnrollProducesExactMemoryOps) {
  Program prog = parse(idct_source());
  Dfg dfg = lower(prog, "idct");
  int loads = 0, stores = 0;
  for (const DNode& nd : dfg.nodes) {
    if (nd.op == DOp::kLoad) ++loads;
    if (nd.op == DOp::kStore) ++stores;
  }
  EXPECT_EQ(loads, 128);   // 16 one-dimensional passes x 8 reads
  EXPECT_EQ(stores, 128);  // ... x 8 writes
}

TEST(Lowering, NonInlinedModeCreatesRegions) {
  Program prog = parse(idct_source());
  LowerOptions lo;
  lo.inline_functions = false;
  Dfg dfg = lower(prog, "idct", lo);
  EXPECT_EQ(dfg.regions, 17);  // 16 pass calls + top
}

TEST(Lowering, LeafModeYieldsPureDataflow) {
  Program prog = parse(idct_source());
  LeafDfg row = lower_leaf(prog, "idctrow", 0);
  EXPECT_EQ(row.input_addrs.size(), 8u);
  EXPECT_EQ(row.outputs.size(), 8u);
  for (const DNode& nd : row.dfg.nodes) {
    EXPECT_NE(nd.op, DOp::kLoad);
    EXPECT_NE(nd.op, DOp::kStore);
  }
  LeafDfg col = lower_leaf(prog, "idctcol", 0);
  ASSERT_EQ(col.input_addrs.size(), 8u);
  EXPECT_EQ(col.input_addrs[1], 8);  // stride-8 column access
}

// ---- scheduling ------------------------------------------------------------------

TEST(Scheduling, RespectsDependencesAndPorts) {
  Program prog = parse(idct_source());
  Dfg dfg = lower(prog, "idct");
  ScheduleOptions so;  // 1R + 1W
  Schedule sched = schedule(dfg, so);
  // Port limit: at least 128 cycles for 128 loads.
  EXPECT_GE(sched.length, 128);
  // Every dependence holds.
  for (const DepEdge& e : dependence_edges(dfg)) {
    int pc = sched.cycle[static_cast<size_t>(e.from)];
    int cc = sched.cycle[static_cast<size_t>(e.to)];
    if (pc < 0) continue;  // constant
    EXPECT_LE(pc + e.latency, cc) << e.from << "->" << e.to;
  }
  // Port usage per cycle within bounds.
  std::map<int, int> reads, writes;
  for (size_t i = 0; i < dfg.nodes.size(); ++i) {
    if (dfg.nodes[i].op == DOp::kLoad) ++reads[sched.cycle[i]];
    if (dfg.nodes[i].op == DOp::kStore) ++writes[sched.cycle[i]];
  }
  for (auto& [t, cnt] : reads) EXPECT_LE(cnt, so.mem_read_ports);
  for (auto& [t, cnt] : writes) EXPECT_LE(cnt, so.mem_write_ports);
}

TEST(Scheduling, MorePortsShortenTheSchedule) {
  Program prog = parse(idct_source());
  Dfg dfg = lower(prog, "idct");
  ScheduleOptions one;  // MEM_ACC_11
  ScheduleOptions two;  // MEM_ACC_NN
  two.mem_read_ports = 2;
  two.mem_write_ports = 2;
  EXPECT_LT(schedule(dfg, two).length, schedule(dfg, one).length);
}

TEST(Scheduling, SpeculationCompressesSchedules) {
  Program prog = parse(idct_source());
  Dfg dfg = lower(prog, "idct");
  ScheduleOptions base;
  base.mem_read_ports = 2;
  base.mem_write_ports = 2;
  base.mul_units = 4;
  ScheduleOptions spec = base;
  spec.speculative = true;
  EXPECT_LE(schedule(dfg, spec).length, schedule(dfg, base).length);
}

TEST(Scheduling, RegionsSerializeWithOverhead) {
  Program prog = parse(idct_source());
  LowerOptions lo;
  lo.inline_functions = false;
  Dfg regions = lower(prog, "idct", lo);
  Dfg inlined = lower(prog, "idct");
  ScheduleOptions so;
  so.region_overhead = 18;
  EXPECT_GT(schedule(regions, so).length,
            schedule(inlined, so).length + 16 * 10);
}

// ---- end-to-end compiles ------------------------------------------------------------

idct::Block run_design(netlist::Design& d, const idct::Block& in,
                       axis::StreamTiming* timing = nullptr) {
  sim::Simulator sim(d);
  axis::StreamTestbench tb(sim);
  auto out = tb.run({in}, 500000);
  if (timing) *timing = tb.timing();
  return out[0];
}

TEST(Bambu, DefaultConfigIsBitExactAndSequential) {
  HlsCompileResult r = compile_bambu(idct_source(), {});
  SplitMix64 rng(70);
  idct::Block in = realistic_coeff_block(rng);
  axis::StreamTiming timing;
  EXPECT_EQ(run_design(r.design, in, &timing), software_idct(in));
  // Paper: Bambu periodicity/latency are in the hundreds of cycles.
  EXPECT_GT(timing.latency_cycles, 150);
  EXPECT_LT(timing.latency_cycles, 600);
}

TEST(Bambu, ThroughputMeasuredOverManyMatrices) {
  HlsCompileResult r = compile_bambu(idct_source(), {});
  sim::Simulator sim(r.design);
  axis::StreamTestbench tb(sim);
  SplitMix64 rng(71);
  std::vector<idct::Block> ins;
  for (int i = 0; i < 3; ++i) ins.push_back(realistic_coeff_block(rng));
  auto out = tb.run(ins, 500000);
  for (size_t i = 0; i < ins.size(); ++i)
    EXPECT_EQ(out[i], software_idct(ins[i]));
  EXPECT_GT(tb.timing().periodicity_cycles, 150.0);
  EXPECT_TRUE(tb.monitor().clean());
}

TEST(Bambu, PerformancePresetBeatsAreaPreset) {
  BambuOptions area;
  area.preset = BambuPreset::kArea;
  BambuOptions perf;
  perf.preset = BambuPreset::kPerformanceMp;
  perf.speculative_sdc = true;
  HlsCompileResult ra = compile_bambu(idct_source(), area);
  HlsCompileResult rp = compile_bambu(idct_source(), perf);
  EXPECT_LT(rp.kernel_states, ra.kernel_states);
  // Paper: best Bambu config at 185 cycles periodicity vs 323 initial.
  EXPECT_GT(static_cast<double>(ra.kernel_states) / rp.kernel_states, 1.3);
}

TEST(Bambu, SweepHasFortyTwoConfigs) {
  EXPECT_EQ(bambu_sweep().size(), 42u);
}

TEST(Bambu, AllPresetsAreBitExact) {
  SplitMix64 rng(72);
  idct::Block in = realistic_coeff_block(rng);
  idct::Block want = software_idct(in);
  for (BambuPreset p : {BambuPreset::kArea, BambuPreset::kBalancedMp,
                        BambuPreset::kPerformanceMp}) {
    BambuOptions o;
    o.preset = p;
    HlsCompileResult r = compile_bambu(idct_source(), o);
    EXPECT_EQ(run_design(r.design, in), want) << o.label();
  }
}

TEST(Bambu, UsesFewDspsViaSharing) {
  HlsCompileResult r = compile_bambu(idct_source(), {});
  auto rep = synth::synthesize(r.design);
  // Paper: Bambu designs use 5-9 DSP blocks (shared multiplier units).
  EXPECT_LE(rep.n_dsp, 12);
  EXPECT_GE(rep.n_dsp, 1);
}

TEST(Vhls, PushButtonIsMuchSlowerThanBambu) {
  HlsCompileResult vb = compile_vhls(idct_source(), {});
  HlsCompileResult bb = compile_bambu(idct_source(), {});
  EXPECT_GT(vb.kernel_states, bb.kernel_states);
  SplitMix64 rng(73);
  idct::Block in = realistic_coeff_block(rng);
  EXPECT_EQ(run_design(vb.design, in), software_idct(in));
}

TEST(Vhls, PragmasProduceStreamingEngine) {
  VhlsOptions o;
  o.pragmas = true;
  HlsCompileResult r = compile_vhls(idct_source(), o);
  EXPECT_TRUE(r.streaming);
  sim::Simulator sim(r.design);
  axis::StreamTestbench tb(sim);
  SplitMix64 rng(74);
  std::vector<idct::Block> ins;
  for (int i = 0; i < 8; ++i) ins.push_back(realistic_coeff_block(rng));
  auto out = tb.run(ins);
  for (size_t i = 0; i < ins.size(); ++i)
    EXPECT_EQ(out[i], software_idct(ins[i])) << i;
  EXPECT_TRUE(tb.monitor().clean());
  // Paper: optimized VHLS latency 26, periodicity 8.
  EXPECT_EQ(tb.timing().latency_cycles, 26);
  EXPECT_LE(tb.timing().periodicity_cycles, 9.0);
}

TEST(Vhls, PragmasRecoverEighteenFold) {
  // Paper: push-button throughput is ~18x below initial Verilog; the
  // pragma set brings quality back to ~90% of optimized Verilog. Compare
  // the two VHLS variants' periodicity directly.
  HlsCompileResult push = compile_vhls(idct_source(), {});
  VhlsOptions o;
  o.pragmas = true;
  HlsCompileResult opt = compile_vhls(idct_source(), o);

  sim::Simulator s1(push.design);
  axis::StreamTestbench t1(s1);
  sim::Simulator s2(opt.design);
  axis::StreamTestbench t2(s2);
  SplitMix64 rng(75);
  std::vector<idct::Block> ins;
  for (int i = 0; i < 3; ++i) ins.push_back(realistic_coeff_block(rng));
  t1.run(ins, 500000);
  t2.run(ins);
  EXPECT_GT(t1.timing().periodicity_cycles /
                t2.timing().periodicity_cycles,
            20.0);
}

TEST(Vhls, BackpressureSafeStreaming) {
  VhlsOptions o;
  o.pragmas = true;
  HlsCompileResult r = compile_vhls(idct_source(), o);
  sim::Simulator sim(r.design);
  axis::StreamTestbench tb(sim);
  tb.sink().set_backpressure(2, 5);
  SplitMix64 rng(76);
  std::vector<idct::Block> ins;
  for (int i = 0; i < 4; ++i) ins.push_back(realistic_coeff_block(rng));
  auto out = tb.run(ins);
  for (size_t i = 0; i < ins.size(); ++i)
    EXPECT_EQ(out[i], software_idct(ins[i]));
  EXPECT_TRUE(tb.monitor().clean());
}

}  // namespace
}  // namespace hlshc::hls
