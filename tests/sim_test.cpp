// Unit tests for the cycle-accurate netlist simulator.
#include "sim/simulator.hpp"

#include <gtest/gtest.h>

namespace hlshc::sim {
namespace {

using netlist::Design;
using netlist::NodeId;

TEST(Simulator, CombinationalAdder) {
  Design d("add");
  NodeId a = d.input("a", 8);
  NodeId b = d.input("b", 8);
  d.output("s", d.add(a, b, 9));
  Simulator sim(d);
  sim.set_input("a", 100);
  sim.set_input("b", 100);
  sim.eval();
  EXPECT_EQ(sim.output_i64("s"), 200);
}

TEST(Simulator, CounterAdvancesPerStep) {
  Design d("cnt");
  NodeId cnt = d.reg(4, 0, "cnt");
  d.set_reg_next(cnt, d.add(cnt, d.constant(4, 1), 4));
  d.output("q", cnt);
  Simulator sim(d);
  sim.eval();
  EXPECT_EQ(sim.output_i64("q"), 0);
  sim.step();
  EXPECT_EQ(sim.output_i64("q"), 1);
  sim.run(14);
  EXPECT_EQ(sim.output_i64("q"), -1);  // 15 at 4 bits signed
  sim.step();
  EXPECT_EQ(sim.output_i64("q"), 0);   // wraps
  EXPECT_EQ(sim.cycle(), 16u);
}

TEST(Simulator, RegisterEnableGatesUpdates) {
  Design d("en");
  NodeId en = d.input("en", 1);
  NodeId v = d.input("v", 8);
  NodeId r = d.reg(8, 42, "r");
  d.set_reg_next(r, v, en);
  d.output("q", r);
  Simulator sim(d);
  sim.set_input("v", 7);
  sim.set_input("en", 0);
  sim.step();
  EXPECT_EQ(sim.output_i64("q"), 42);  // held
  sim.set_input("en", 1);
  sim.step();
  EXPECT_EQ(sim.output_i64("q"), 7);
}

TEST(Simulator, ResetRestoresInitValues) {
  Design d("rst");
  NodeId r = d.reg(8, 5, "r");
  d.set_reg_next(r, d.add(r, d.constant(8, 1), 8));
  d.output("q", r);
  Simulator sim(d);
  sim.run(3);
  EXPECT_EQ(sim.output_i64("q"), 8);
  sim.reset();
  sim.eval();
  EXPECT_EQ(sim.output_i64("q"), 5);
  EXPECT_EQ(sim.cycle(), 0u);
}

TEST(Simulator, MemoryWriteThenRead) {
  Design d("mem");
  int mem = d.add_memory("m", 16, 8);
  NodeId addr = d.input("addr", 3);
  NodeId data = d.input("data", 16);
  NodeId we = d.input("we", 1);
  d.mem_write(mem, addr, data, we);
  d.output("q", d.mem_read(mem, addr));
  Simulator sim(d);

  sim.set_input("addr", 3);
  sim.set_input("data", 1234);
  sim.set_input("we", 1);
  sim.eval();
  EXPECT_EQ(sim.output_i64("q"), 0);  // combinational read sees pre-write
  sim.step();
  EXPECT_EQ(sim.output_i64("q"), 1234);  // committed at the edge

  sim.set_input("we", 0);
  sim.set_input("data", 99);
  sim.step();
  EXPECT_EQ(sim.output_i64("q"), 1234);  // write disabled
}

TEST(Simulator, MemReadIsCombinationalInAddress) {
  Design d("mem");
  int mem = d.add_memory("m", 8, 4);
  NodeId addr = d.input("addr", 2);
  d.output("q", d.mem_read(mem, addr));
  Simulator sim(d);
  sim.mem_poke(mem, 2, BitVec(8, 77));
  sim.set_input("addr", 2);
  sim.eval();
  EXPECT_EQ(sim.output_i64("q"), 77);
  sim.set_input("addr", 1);
  sim.eval();
  EXPECT_EQ(sim.output_i64("q"), 0);
}

TEST(Simulator, MuxSliceConcatPipeline) {
  Design d("mix");
  NodeId sel = d.input("sel", 1);
  NodeId a = d.input("a", 8);
  NodeId hi = d.slice(a, 7, 4);
  NodeId lo = d.slice(a, 3, 0);
  NodeId swapped = d.concat(lo, hi);
  d.output("o", d.mux(sel, swapped, a, 8));
  Simulator sim(d);
  sim.set_input("a", 0xAB);
  sim.set_input("sel", 1);
  sim.eval();
  EXPECT_EQ(sim.output("o").to_uint64(), 0xBAu);
  sim.set_input("sel", 0);
  sim.eval();
  EXPECT_EQ(sim.output("o").to_uint64(), 0xABu);
}

TEST(Simulator, UnknownPortThrows) {
  Design d("p");
  NodeId a = d.input("a", 4);
  d.output("o", a);
  Simulator sim(d);
  EXPECT_THROW(sim.set_input("nope", 1), Error);
  EXPECT_THROW(sim.output("nope"), Error);
}

TEST(Simulator, TwoRegisterShiftChain) {
  // Classic shift register: q2 sees the input two cycles later.
  Design d("shift");
  NodeId in = d.input("in", 8);
  NodeId r1 = d.reg(8, 0, "r1");
  NodeId r2 = d.reg(8, 0, "r2");
  d.set_reg_next(r1, in);
  d.set_reg_next(r2, r1);
  d.output("q", r2);
  Simulator sim(d);
  sim.set_input("in", 11);
  sim.step();
  sim.set_input("in", 22);
  sim.step();
  EXPECT_EQ(sim.output_i64("q"), 11);
  sim.step();
  EXPECT_EQ(sim.output_i64("q"), 22);
}

}  // namespace
}  // namespace hlshc::sim
