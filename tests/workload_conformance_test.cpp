// Registry conformance (tier-1 slice): every registered workload x every
// fast builder compiles through the canonical tools::compile pipeline,
// simulates on seeded stimulus, and matches the workload's reference model
// under its quality judge. The slow-labelled workload_conformance_full_test
// extends this to the slow builders, more frames, and both optimizer
// settings.
#include "workload/workload.hpp"

#include <gtest/gtest.h>

#include "axis/testbench.hpp"
#include "sim/engine.hpp"
#include "tools/compile.hpp"

namespace hlshc {
namespace {

using workload::Frame;
using workload::Registry;
using workload::WorkloadSpec;

TEST(WorkloadRegistry, NamesAreSortedAndComplete) {
  std::vector<std::string> names = Registry::instance().names();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names, (std::vector<std::string>{"fdct", "fir16", "idct",
                                             "matmul"}));
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(WorkloadRegistry, FindAndGet) {
  const Registry& reg = Registry::instance();
  EXPECT_NE(reg.find("idct"), nullptr);
  EXPECT_EQ(reg.find("dct9000"), nullptr);
  EXPECT_THROW(reg.get("dct9000"), Error);
  EXPECT_EQ(reg.get("fir16").name, "fir16");
}

TEST(WorkloadRegistry, IdctKeepsItsCanonicalBuilders) {
  // The Table II rows: moving the IDCT behind the registry must not lose
  // or rename any of the designs the paper's comparison is built from.
  const WorkloadSpec& idct = Registry::instance().get("idct");
  EXPECT_EQ(idct.out_width, 9);
  for (const char* name :
       {"verilog_initial", "verilog_opt1", "verilog_opt2", "chisel_initial",
        "chisel_opt", "bsv_initial", "bsv_opt", "xls_comb", "xls_p8", "bambu",
        "bambu_perf", "vhls_pushbutton", "vhls_pragmas"})
    EXPECT_NE(idct.find_builder(name), nullptr) << name;
  EXPECT_EQ(idct.find_builder("nope"), nullptr);
  EXPECT_THROW(idct.builder("nope"), Error);
}

TEST(WorkloadRegistry, EveryWorkloadHasThreeFlows) {
  for (const auto& [name, spec] : Registry::instance().all()) {
    std::set<std::string> flows;
    for (const auto& b : spec.builders) flows.insert(b.flow);
    EXPECT_GE(flows.size(), 3u) << name;
  }
}

TEST(WorkloadRegistry, StimulusIsDeterministic) {
  for (const auto& [name, spec] : Registry::instance().all()) {
    SCOPED_TRACE(name);
    auto a = workload::eval_input_set(spec, 3, 2026, true);
    auto b = workload::eval_input_set(spec, 3, 2026, true);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, workload::eval_input_set(spec, 3, 2027, true));
    EXPECT_EQ(workload::campaign_input_set(spec, 2, 1),
              workload::campaign_input_set(spec, 2, 1));
  }
}

TEST(WorkloadRegistry, DiffOutputsCountsRejectedAndMissingFrames) {
  const WorkloadSpec& spec = Registry::instance().get("idct");
  std::vector<Frame> want(3, Frame{});
  std::vector<Frame> got = want;
  EXPECT_EQ(workload::diff_outputs(spec, want, got), 0);
  got[1][5] = 1;
  EXPECT_EQ(workload::diff_outputs(spec, want, got), 1);
  got.pop_back();
  EXPECT_EQ(workload::diff_outputs(spec, want, got), 2);
}

TEST(WorkloadConformance, FastBuildersMatchReferenceThroughCompile) {
  for (const auto& [name, spec] : Registry::instance().all()) {
    const auto inputs = workload::eval_input_set(spec, 2, 2026, true);
    const auto want = workload::reference_outputs(spec, inputs);
    for (const auto& builder : spec.builders) {
      if (builder.slow) continue;
      SCOPED_TRACE(name + "." + builder.name);
      tools::CompiledDesign cd = tools::compile(builder.build());
      std::unique_ptr<sim::Engine> sim = sim::make_engine(cd.design);
      axis::StreamTestbench tb(*sim);
      auto got = tb.run(inputs);
      EXPECT_TRUE(tb.monitor().clean());
      EXPECT_EQ(workload::diff_outputs(spec, want, got), 0);
    }
  }
}

}  // namespace
}  // namespace hlshc
