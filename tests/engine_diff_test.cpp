// Differential tests: the compiled engine against the interpreter oracle.
//
// The compiled engine (sim::CompiledSimulator over netlist::ExecPlan) must
// be observationally indistinguishable from the interpreter
// (sim::Simulator) — same node values every cycle, same cycle counts, same
// stream timing, same watchdog behaviour and same fault-campaign
// classifications. Three layers of evidence:
//
//   1. randomized netlists covering every op, fuzzed cycle by cycle with
//      every node value compared after every eval;
//   2. every registered AXI-Stream IDCT design run through the stream
//      testbench on both engines with seeded stimulus and randomized
//      source/sink timing;
//   3. fault campaigns (SEU + stuck-at) classified by both engines.
//
// Plus unit tests for the ExecPlan compilation itself (levelization,
// constant hoisting, per-design caching).
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <memory>
#include <numeric>
#include <vector>

#include "axis/testbench.hpp"
#include "base/rng.hpp"
#include "bsv/designs.hpp"
#include "chisel/designs.hpp"
#include "fault/campaign.hpp"
#include "fault/model.hpp"
#include "hls/tool.hpp"
#include "netlist/exec_plan.hpp"
#include "obs/metrics.hpp"
#include "rtl/designs.hpp"
#include "sim/compiled.hpp"
#include "sim/simulator.hpp"
#include "testutil.hpp"
#include "xls/designs.hpp"

namespace hlshc {
namespace {

using netlist::Design;
using netlist::NodeId;
using netlist::Op;

// ---- randomized netlist fuzzing --------------------------------------------

// random_design lives in testutil.hpp so the batched-engine differential
// suite (tests/batch_test.cpp) fuzzes the exact same design space.
using testutil::random_design;

void expect_all_nodes_equal(const sim::Simulator& oracle,
                            const sim::CompiledSimulator& compiled,
                            const Design& d, uint64_t seed, int cycle) {
  for (size_t i = 0; i < d.node_count(); ++i) {
    NodeId id = static_cast<NodeId>(i);
    ASSERT_EQ(oracle.value(id), compiled.value(id))
        << "seed " << seed << " cycle " << cycle << " node " << id << " ("
        << netlist::op_name(d.node(id).op) << " w=" << d.node(id).width
        << ')';
  }
}

class RandomNetlistDiff : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomNetlistDiff, EveryNodeEveryCycleBitExact) {
  const uint64_t seed = GetParam();
  Design d = random_design(seed);
  sim::Simulator oracle(d);
  sim::CompiledSimulator compiled(d);
  SplitMix64 rng(seed ^ 0x9e3779b97f4a7c15ull);

  std::vector<NodeId> ins(d.inputs().begin(), d.inputs().end());
  for (int cycle = 0; cycle < 24; ++cycle) {
    for (NodeId in : ins) {
      int64_t v = static_cast<int64_t>(rng.next());
      oracle.poke(in, v);
      compiled.poke(in, v);
    }
    oracle.eval();
    compiled.eval();
    expect_all_nodes_equal(oracle, compiled, d, seed, cycle);
    oracle.step();
    compiled.step();
    ASSERT_EQ(oracle.cycle(), compiled.cycle());
  }

  // Mid-run reset must restore both engines to the same state.
  oracle.reset();
  compiled.reset();
  oracle.eval();
  compiled.eval();
  expect_all_nodes_equal(oracle, compiled, d, seed, -1);
}

TEST_P(RandomNetlistDiff, SeuPokesAgree) {
  const uint64_t seed = GetParam();
  Design d = random_design(seed);
  sim::Simulator oracle(d);
  sim::CompiledSimulator compiled(d);
  SplitMix64 rng(seed + 7);

  std::vector<NodeId> regs;
  for (size_t i = 0; i < d.node_count(); ++i)
    if (d.node(static_cast<NodeId>(i)).op == Op::Reg)
      regs.push_back(static_cast<NodeId>(i));
  ASSERT_FALSE(regs.empty());

  for (int round = 0; round < 8; ++round) {
    NodeId r = regs[rng.next_in(0, static_cast<long>(regs.size()) - 1)];
    int bit = static_cast<int>(rng.next_in(0, d.node(r).width - 1));
    oracle.flip_reg_bit(r, bit);
    compiled.flip_reg_bit(r, bit);
    int addr = static_cast<int>(rng.next_in(0, 7));
    int mbit =
        static_cast<int>(rng.next_in(0, d.memories()[0].width - 1));
    oracle.flip_mem_bit(0, addr, mbit);
    compiled.flip_mem_bit(0, addr, mbit);
    oracle.step();
    compiled.step();
    expect_all_nodes_equal(oracle, compiled, d, seed, round);
    for (int a = 0; a < 8; ++a)
      ASSERT_EQ(oracle.mem_peek(0, a), compiled.mem_peek(0, a))
          << "seed " << seed << " addr " << a;
  }
}

/// Stuck-at on an arbitrary node (including inputs and hoisted constants).
class StuckBit : public sim::FaultInjector {
 public:
  StuckBit(NodeId node, int bit, bool one) : node_(node), bit_(bit), one_(one) {}

  std::vector<NodeId> combinational_targets() const override {
    return {node_};
  }

  BitVec transform(NodeId, const BitVec& v, uint64_t) override {
    const int w = v.width();
    const BitVec mask(w, static_cast<int64_t>(uint64_t{1} << bit_));
    return one_ ? BitVec::bor(v, mask, w)
                : BitVec::band(v, BitVec::bnot(mask, w), w);
  }

 private:
  NodeId node_;
  int bit_;
  bool one_;
};

TEST_P(RandomNetlistDiff, CombinationalInjectionAndDisarmAgree) {
  const uint64_t seed = GetParam();
  Design d = random_design(seed);
  sim::Simulator oracle(d);
  sim::CompiledSimulator compiled(d);
  SplitMix64 rng(seed * 31 + 5);
  std::vector<NodeId> ins(d.inputs().begin(), d.inputs().end());

  auto drive_and_compare = [&](int cycles, int tag) {
    for (int c = 0; c < cycles; ++c) {
      for (NodeId in : ins) {
        int64_t v = static_cast<int64_t>(rng.next());
        oracle.poke(in, v);
        compiled.poke(in, v);
      }
      oracle.step();
      compiled.step();
      expect_all_nodes_equal(oracle, compiled, d, seed, tag * 100 + c);
    }
  };

  for (int round = 0; round < 4; ++round) {
    // Any node but MemWrite is a fair target — inputs and consts included.
    NodeId target;
    do {
      target = static_cast<NodeId>(
          rng.next_in(0, static_cast<long>(d.node_count()) - 1));
    } while (d.node(target).op == Op::MemWrite);
    StuckBit inj(target, static_cast<int>(rng.next_in(0, d.node(target).width - 1)),
                 rng.next_in(0, 1) != 0);
    oracle.set_fault_injector(&inj);
    compiled.set_fault_injector(&inj);
    drive_and_compare(6, round * 2);
    // Disarm: both engines must heal identically (hoisted constants!).
    oracle.set_fault_injector(nullptr);
    compiled.set_fault_injector(nullptr);
    drive_and_compare(4, round * 2 + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomNetlistDiff,
                         ::testing::Range<uint64_t>(0, 40));

// ---- watchdog parity -------------------------------------------------------

TEST(EngineDiff, WatchdogFiresIdenticallyOnBothEngines) {
  Design d = random_design(3);
  for (sim::EngineKind kind :
       {sim::EngineKind::kInterpreter, sim::EngineKind::kCompiled}) {
    std::unique_ptr<sim::Engine> e = sim::make_engine(d, kind);
    e->set_cycle_budget(5);
    try {
      e->run(100);
      FAIL() << "watchdog did not fire on " << e->kind_name();
    } catch (const sim::SimTimeout& t) {
      EXPECT_EQ(t.cycles(), 5u) << e->kind_name();
    }
    EXPECT_EQ(e->cycle(), 5u) << e->kind_name();
  }
}

// ---- every registered IDCT design ------------------------------------------

struct FamilyCase {
  const char* label;
  std::function<Design()> build;
};

std::vector<FamilyCase> axis_families() {
  return {
      {"verilog_initial", [] { return rtl::build_verilog_initial(); }},
      {"verilog_opt1", [] { return rtl::build_verilog_opt1(); }},
      {"verilog_opt2", [] { return rtl::build_verilog_opt2(); }},
      {"chisel_initial", [] { return chisel::build_chisel_initial(); }},
      {"chisel_opt", [] { return chisel::build_chisel_opt(); }},
      {"bsv_initial", [] { return bsv::build_bsv_initial(); }},
      {"bsv_opt", [] { return bsv::build_bsv_opt(); }},
      {"xls_comb", [] { return xls::build_xls_design({0}).design; }},
      {"xls_p8", [] { return xls::build_xls_design({8}).design; }},
      {"bambu",
       [] { return hls::compile_bambu(hls::idct_source(), {}).design; }},
      {"vhls_opt",
       [] {
         hls::VhlsOptions o;
         o.pragmas = true;
         return hls::compile_vhls(hls::idct_source(), o).design;
       }},
  };
}

struct StreamRun {
  std::vector<idct::Block> outs;
  uint64_t total_cycles = 0;
  int latency = 0;
  double periodicity = 0.0;
};

StreamRun stream_run(const Design& d, sim::EngineKind kind,
                     const std::vector<idct::Block>& ins, int gap, int stall,
                     int period) {
  std::unique_ptr<sim::Engine> e = sim::make_engine(d, kind);
  axis::StreamTestbench tb(*e);
  tb.source().set_gap_cycles(gap);
  if (period) tb.sink().set_backpressure(stall, period);
  StreamRun r;
  r.outs = tb.run(ins, 500000);
  r.total_cycles = tb.timing().total_cycles;
  r.latency = tb.timing().latency_cycles;
  r.periodicity = tb.timing().periodicity_cycles;
  return r;
}

class EveryFamilyDiff : public ::testing::TestWithParam<size_t> {};

TEST_P(EveryFamilyDiff, EnginesAgreeOnOutputsAndTiming) {
  FamilyCase fc = axis_families()[GetParam()];
  Design d = fc.build();
  SplitMix64 rng(20260806);
  std::vector<idct::Block> ins;
  for (int i = 0; i < 4; ++i)
    ins.push_back(testutil::realistic_coeff_block(rng));

  struct Timing {
    int gap, stall, period;
  };
  for (Timing t : {Timing{0, 0, 0}, Timing{1, 1, 3}}) {
    StreamRun oracle =
        stream_run(d, sim::EngineKind::kInterpreter, ins, t.gap, t.stall,
                   t.period);
    StreamRun compiled =
        stream_run(d, sim::EngineKind::kCompiled, ins, t.gap, t.stall,
                   t.period);
    ASSERT_EQ(oracle.outs, compiled.outs)
        << fc.label << " gap=" << t.gap << " stall=" << t.stall;
    EXPECT_EQ(oracle.total_cycles, compiled.total_cycles) << fc.label;
    EXPECT_EQ(oracle.latency, compiled.latency) << fc.label;
    EXPECT_EQ(oracle.periodicity, compiled.periodicity) << fc.label;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, EveryFamilyDiff, ::testing::Range<size_t>(0, 11),
    [](const ::testing::TestParamInfo<size_t>& info) {
      return axis_families()[info.param].label;
    });

// ---- fault-campaign classification parity ----------------------------------

TEST(EngineDiff, FaultCampaignClassificationsIdentical) {
  Design d = rtl::build_verilog_initial();
  std::vector<fault::FaultSite> sites = fault::sample_seu_sites(d, 6, 200, 11);
  std::vector<fault::FaultSite> stuck = fault::sample_stuck_sites(d, 6, 12);
  sites.insert(sites.end(), stuck.begin(), stuck.end());

  fault::CampaignOptions opt;
  opt.matrices = 2;
  opt.engine = sim::EngineKind::kInterpreter;
  fault::CampaignReport oracle = fault::run_campaign(d, sites, opt);
  opt.engine = sim::EngineKind::kCompiled;
  fault::CampaignReport compiled = fault::run_campaign(d, sites, opt);

  EXPECT_EQ(oracle.reference_functional, compiled.reference_functional);
  EXPECT_EQ(oracle.counts.masked, compiled.counts.masked);
  EXPECT_EQ(oracle.counts.sdc, compiled.counts.sdc);
  EXPECT_EQ(oracle.counts.detected, compiled.counts.detected);
  EXPECT_EQ(oracle.counts.hang, compiled.counts.hang);
  ASSERT_EQ(oracle.runs.size(), compiled.runs.size());
  for (size_t i = 0; i < oracle.runs.size(); ++i)
    EXPECT_EQ(oracle.runs[i].outcome, compiled.runs[i].outcome)
        << "site " << i;
}

// ---- activity-counter parity -----------------------------------------------

void expect_profiles_equal(const sim::ActivityProfile& a,
                           const sim::ActivityProfile& b,
                           const char* label) {
  EXPECT_EQ(a.cycles, b.cycles) << label;
  ASSERT_EQ(a.toggles.size(), b.toggles.size()) << label;
  for (size_t i = 0; i < a.toggles.size(); ++i) {
    EXPECT_EQ(a.toggles[i], b.toggles[i]) << label << " toggles node " << i;
    EXPECT_EQ(a.reg_writes[i], b.reg_writes[i])
        << label << " reg_writes node " << i;
  }
  ASSERT_EQ(a.mem_reads.size(), b.mem_reads.size()) << label;
  for (size_t m = 0; m < a.mem_reads.size(); ++m) {
    EXPECT_EQ(a.mem_reads[m], b.mem_reads[m]) << label << " mem_reads " << m;
    EXPECT_EQ(a.mem_writes[m], b.mem_writes[m])
        << label << " mem_writes " << m;
  }
}

TEST_P(RandomNetlistDiff, ActivityCountersAgree) {
  const uint64_t seed = GetParam();
  Design d = random_design(seed);
  sim::Simulator oracle(d);
  sim::CompiledSimulator compiled(d);
  oracle.set_activity_enabled(true);
  compiled.set_activity_enabled(true);
  SplitMix64 rng(seed ^ 0xa5a5a5a5ull);

  std::vector<NodeId> ins(d.inputs().begin(), d.inputs().end());
  for (int cycle = 0; cycle < 24; ++cycle) {
    for (NodeId in : ins) {
      int64_t v = static_cast<int64_t>(rng.next());
      oracle.poke(in, v);
      compiled.poke(in, v);
    }
    oracle.step();
    compiled.step();
  }
  EXPECT_EQ(oracle.activity().cycles, 24u);
  expect_profiles_equal(oracle.activity(), compiled.activity(),
                        d.name().c_str());
}

TEST(EngineDiff, ActivityParityOnStreamedIdctDesigns) {
  SplitMix64 rng(20260806);
  std::vector<idct::Block> ins;
  for (int i = 0; i < 2; ++i)
    ins.push_back(testutil::realistic_coeff_block(rng));

  for (const char* label :
       {"verilog_opt2", "chisel_opt", "bsv_opt", "xls_p8"}) {
    Design d = [&] {
      for (const FamilyCase& fc : axis_families())
        if (std::string(fc.label) == label) return fc.build();
      ADD_FAILURE() << "unknown family " << label;
      return rtl::build_verilog_opt2();
    }();
    std::unique_ptr<sim::Engine> oracle =
        sim::make_engine(d, sim::EngineKind::kInterpreter);
    std::unique_ptr<sim::Engine> compiled =
        sim::make_engine(d, sim::EngineKind::kCompiled);
    for (sim::Engine* e : {oracle.get(), compiled.get()}) {
      e->set_activity_enabled(true);
      axis::StreamTestbench tb(*e);
      tb.run(ins, 500000);
    }
    expect_profiles_equal(oracle->activity(), compiled->activity(), label);

    // The profile must show real work: toggles somewhere, and every design
    // in the sweep latches registers.
    const sim::ActivityProfile& p = compiled->activity();
    uint64_t toggles = std::accumulate(p.toggles.begin(), p.toggles.end(),
                                       uint64_t{0});
    uint64_t latches = std::accumulate(p.reg_writes.begin(),
                                       p.reg_writes.end(), uint64_t{0});
    EXPECT_GT(toggles, 0u) << label;
    EXPECT_GT(latches, 0u) << label;
  }
}

TEST(EngineDiff, ActivityDisableFreezesAndReenableZeroes) {
  Design d = rtl::build_verilog_opt2();
  std::unique_ptr<sim::Engine> e = sim::make_engine(d);
  e->set_activity_enabled(true);
  e->set_input("s_tvalid", 1);
  e->set_input("m_tready", 1);
  e->set_input(axis::lane_port("s", 0), 123);
  e->run(32);
  const sim::ActivityProfile& p = e->activity();
  EXPECT_EQ(p.cycles, 32u);
  uint64_t toggles =
      std::accumulate(p.toggles.begin(), p.toggles.end(), uint64_t{0});
  EXPECT_GT(toggles, 0u);

  // Disabling freezes the counts for inspection...
  e->set_activity_enabled(false);
  e->run(16);
  EXPECT_EQ(e->activity().cycles, 32u);

  // ...and re-enabling starts a fresh accumulation.
  e->set_activity_enabled(true);
  EXPECT_EQ(e->activity().cycles, 0u);
  e->run(4);
  EXPECT_EQ(e->activity().cycles, 4u);
}

/// The zero-overhead-when-disabled contract, behaviourally: with obs
/// disabled and no profiling armed, a run must leave no trace in the global
/// registry; and the instrumented-but-disabled engine must not be slower
/// than the same engine with activity profiling actually on. The timing
/// bound is deliberately loose (1.5x) — it catches "someone made the
/// disabled path do per-node work", not micro-regressions.
TEST(EngineDiff, DisabledInstrumentationHasNoSideEffectsAndBoundedCost) {
  Design d = rtl::build_verilog_opt2();
  const int64_t cycles = 20000;

  auto timed_run = [&](bool profile) {
    std::unique_ptr<sim::Engine> e = sim::make_engine(d);
    e->set_activity_enabled(profile);
    e->set_input("s_tvalid", 1);
    e->set_input("m_tready", 1);
    auto t0 = std::chrono::steady_clock::now();
    e->run(cycles);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };

  obs::set_enabled(false);
  obs::registry().reset();
  double off = timed_run(false);
  EXPECT_EQ(obs::registry().to_json().dump(),
            "{\"counters\":{},\"gauges\":{},\"timers\":{}}");

  double on = timed_run(true);
  EXPECT_LT(off, on * 1.5)
      << "disabled engine took " << off << "s vs " << on
      << "s with activity profiling on";
}

// ---- ExecPlan compilation --------------------------------------------------

TEST(ExecPlan, StreamIsLevelizedAndRespectsDependencies) {
  Design d = rtl::build_verilog_opt2();
  auto plan = netlist::ExecPlan::for_design(d);

  std::vector<int> pos(d.node_count(), -1);
  int k = 0;
  for (const netlist::ExecInstr& in : plan->instrs())
    pos[static_cast<size_t>(in.dst)] = k++;

  for (const netlist::ExecInstr& in : plan->instrs()) {
    if (in.op == Op::Reg) continue;  // reads state, not the stream
    for (NodeId o : d.node(in.dst).operands) {
      Op oop = d.node(o).op;
      if (oop == Op::Input || oop == Op::Const) continue;  // sources
      if (oop == Op::Reg) continue;  // level 0, ordered first anyway
      ASSERT_LT(pos[static_cast<size_t>(o)],
                pos[static_cast<size_t>(in.dst)])
          << "operand " << o << " of node " << in.dst
          << " executes after its user";
    }
  }
}

TEST(ExecPlan, ConstantsAndInputsHoistedOutOfStream) {
  Design d = rtl::build_verilog_initial();
  auto plan = netlist::ExecPlan::for_design(d);
  for (const netlist::ExecInstr& in : plan->instrs()) {
    EXPECT_NE(in.op, Op::Const);
    EXPECT_NE(in.op, Op::Input);
  }
  size_t n_const = 0;
  for (size_t i = 0; i < d.node_count(); ++i)
    if (d.node(static_cast<NodeId>(i)).op == Op::Const) ++n_const;
  EXPECT_EQ(plan->const_instrs().size(), n_const);
}

TEST(ExecPlan, LevelStartsPartitionTheStream) {
  Design d = rtl::build_verilog_opt1();
  auto plan = netlist::ExecPlan::for_design(d);
  const auto& starts = plan->level_starts();
  ASSERT_GE(starts.size(), 2u);
  EXPECT_EQ(starts.front(), 0u);
  EXPECT_EQ(starts.back(), plan->instrs().size());
  for (size_t l = 1; l < starts.size(); ++l)
    EXPECT_LE(starts[l - 1], starts[l]);
  EXPECT_GE(plan->depth(), 1);
}

TEST(ExecPlan, CachedPerDesignAndInvalidatedOnMutation) {
  Design d = rtl::build_verilog_initial();
  auto p1 = netlist::ExecPlan::for_design(d);
  auto p2 = netlist::ExecPlan::for_design(d);
  EXPECT_EQ(p1.get(), p2.get()) << "plan not reused";

  // A design copy shares the already-compiled plan.
  Design copy = d;
  auto p3 = netlist::ExecPlan::for_design(copy);
  EXPECT_EQ(p1.get(), p3.get()) << "copy recompiled the plan";

  // Mutation drops the cache; the old handle stays valid.
  d.output("extra", d.constant(1, 0));
  auto p4 = netlist::ExecPlan::for_design(d);
  EXPECT_NE(p1.get(), p4.get()) << "stale plan served after mutation";
  EXPECT_EQ(p4->slot_count(), d.node_count());
}

TEST(ExecPlan, TopoOrderCachedUntilMutation) {
  Design d = rtl::build_verilog_initial();
  const std::vector<NodeId>* o1 = &d.topo_order();
  const std::vector<NodeId>* o2 = &d.topo_order();
  EXPECT_EQ(o1, o2) << "topo order recomputed";
  auto shared = d.topo_order_shared();
  EXPECT_EQ(shared.get(), o1);

  // Mutation recomputes; `shared` keeps the old vector alive, so the new
  // allocation is necessarily a different object.
  d.output("extra2", d.constant(1, 0));
  const std::vector<NodeId>* o3 = &d.topo_order();
  EXPECT_NE(o3, shared.get()) << "stale topo order served after mutation";
  EXPECT_EQ(o3->size(), d.node_count());
}

}  // namespace
}  // namespace hlshc
