// Unit tests for the AXI-Stream substrate: payload packing, drivers,
// protocol monitor, and back-pressure behaviour against a real DUT
// (the Verilog-family designs double as the DUT here).
#include "axis/stream.hpp"
#include "axis/testbench.hpp"
#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "idct/chenwang.hpp"
#include "rtl/designs.hpp"

namespace hlshc::axis {
namespace {

idct::Block random_block(SplitMix64& rng) {
  idct::Block b{};
  for (auto& v : b)
    v = static_cast<int32_t>(rng.next_in(idct::kCoeffMin, idct::kCoeffMax));
  return b;
}

idct::Block expected(const idct::Block& in) {
  idct::Block b = in;
  idct::idct_2d(b);
  return b;
}

TEST(Stream, BeatPackingRoundTrip) {
  SplitMix64 rng(3);
  idct::Block b = random_block(rng);
  auto beats = matrix_to_beats(b);
  ASSERT_EQ(beats.size(), 8u);
  EXPECT_FALSE(beats[0].last);
  EXPECT_TRUE(beats[7].last);
  for (int r = 0; r < 8; ++r)
    for (int c = 0; c < 8; ++c)
      EXPECT_EQ(beats[static_cast<size_t>(r)]
                    .lanes[static_cast<size_t>(c)]
                    .to_int64(),
                idct::at(b, r, c));
}

TEST(Stream, OutputBeatSignExtension) {
  Beat beat;
  for (int c = 0; c < kLanes; ++c)
    beat.lanes[static_cast<size_t>(c)] = BitVec(kOutElemWidth, -256 + c);
  beat.last = true;
  idct::Block b{};
  store_output_beat(beat, b, 0);
  for (int c = 0; c < 8; ++c) EXPECT_EQ(idct::at(b, 0, c), -256 + c);
}

TEST(Stream, LanePortNames) {
  EXPECT_EQ(lane_port("s", 0), "s_tdata0");
  EXPECT_EQ(lane_port("m", 7), "m_tdata7");
}

TEST(Stream, BeatsToMatrixRequiresEightBeats) {
  std::vector<Beat> beats(3);
  EXPECT_THROW(beats_to_matrix(beats), Error);
}

class TestbenchAgainstDut : public ::testing::Test {
 protected:
  netlist::Design design_ = rtl::build_verilog_initial();
};

TEST_F(TestbenchAgainstDut, SingleMatrixFlowsThrough) {
  sim::Simulator sim(design_);
  StreamTestbench tb(sim);
  SplitMix64 rng(5);
  idct::Block in = random_block(rng);
  auto out = tb.run({in});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], expected(in)) << "in:\n"
                                  << idct::to_string(in) << "got:\n"
                                  << idct::to_string(out[0]);
  EXPECT_TRUE(tb.monitor().clean());
}

TEST_F(TestbenchAgainstDut, MeasuredLatencyAndPeriodicity) {
  sim::Simulator sim(design_);
  StreamTestbench tb(sim);
  SplitMix64 rng(6);
  std::vector<idct::Block> ins;
  for (int i = 0; i < 6; ++i) ins.push_back(random_block(rng));
  auto out = tb.run(ins);
  ASSERT_EQ(out.size(), 6u);
  // The paper's Table II row for initial Verilog: latency 17, periodicity 8.
  EXPECT_EQ(tb.timing().latency_cycles, 17);
  EXPECT_DOUBLE_EQ(tb.timing().periodicity_cycles, 8.0);
}

TEST_F(TestbenchAgainstDut, BackpressureStallsButPreservesData) {
  sim::Simulator sim(design_);
  StreamTestbench tb(sim);
  tb.sink().set_backpressure(2, 5);  // ready only 3 of every 5 cycles
  SplitMix64 rng(7);
  std::vector<idct::Block> ins;
  for (int i = 0; i < 4; ++i) ins.push_back(random_block(rng));
  auto out = tb.run(ins);
  ASSERT_EQ(out.size(), 4u);
  for (size_t i = 0; i < ins.size(); ++i) EXPECT_EQ(out[i], expected(ins[i]));
  EXPECT_TRUE(tb.monitor().clean())
      << "violations: " << tb.monitor().violations().size();
  // Throughput degrades under back-pressure.
  EXPECT_GT(tb.timing().periodicity_cycles, 8.0);
}

TEST_F(TestbenchAgainstDut, SlowSourceStillCorrect) {
  sim::Simulator sim(design_);
  StreamTestbench tb(sim);
  tb.source().set_gap_cycles(3);
  SplitMix64 rng(8);
  std::vector<idct::Block> ins = {random_block(rng), random_block(rng)};
  auto out = tb.run(ins);
  ASSERT_EQ(out.size(), 2u);
  for (size_t i = 0; i < ins.size(); ++i) EXPECT_EQ(out[i], expected(ins[i]));
  EXPECT_TRUE(tb.monitor().clean());
}

TEST_F(TestbenchAgainstDut, TimeoutThrowsInsteadOfHanging) {
  sim::Simulator sim(design_);
  StreamTestbench tb(sim);
  SplitMix64 rng(9);
  EXPECT_THROW(tb.run({random_block(rng)}, /*max_cycles=*/3), Error);
}

}  // namespace
}  // namespace hlshc::axis
