// Flow-neutral scheduler tests: knob validation, objective trade-offs,
// boundary retiming, and the extraction contract — synth::schedule_pipeline
// with the delay-balance objective must produce bit-for-bit the netlist the
// XLS flow's pipeliner produced before the machinery moved here.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "base/check.hpp"
#include "base/rng.hpp"
#include "netlist/dump.hpp"
#include "netlist/ir.hpp"
#include "sim/simulator.hpp"
#include "synth/schedule.hpp"
#include "xls/pipeline.hpp"

namespace hlshc::synth {
namespace {

using netlist::Design;
using netlist::NodeId;

// ---- knob validators -------------------------------------------------------

TEST(ScheduleKnobs, ParseStagesAcceptsTheValidRangeOnly) {
  EXPECT_EQ(parse_stages("0", "test"), 0);
  EXPECT_EQ(parse_stages("18", "test"), 18);
  EXPECT_EQ(parse_stages("64", "test"), 64);
  for (const char* bad : {"", "abc", "-1", "65", "180", "3x", " 4"})
    EXPECT_THROW(parse_stages(bad, "test"), Error) << '"' << bad << '"';
}

TEST(ScheduleKnobs, ParseObjectiveNamesBothObjectives) {
  EXPECT_EQ(parse_objective("balance", "test"),
            ScheduleObjective::kDelayBalance);
  EXPECT_EQ(parse_objective("regmin", "test"),
            ScheduleObjective::kRegisterMin);
  EXPECT_STREQ(schedule_objective_name(ScheduleObjective::kDelayBalance),
               "balance");
  EXPECT_STREQ(schedule_objective_name(ScheduleObjective::kRegisterMin),
               "regmin");
  for (const char* bad : {"", "fastest", "BALANCE", "reg-min"})
    EXPECT_THROW(parse_objective(bad, "test"), Error) << '"' << bad << '"';
}

// ---- fixtures --------------------------------------------------------------

/// Random pure-dataflow function (prop_pipeline_test's generator shape):
/// 3 inputs, 2 outputs, arithmetic with sext seams.
Design random_function(uint64_t seed) {
  SplitMix64 rng(seed);
  Design d("fn_" + std::to_string(seed));
  std::vector<NodeId> pool;
  for (int i = 0; i < 3; ++i)
    pool.push_back(d.input("in" + std::to_string(i),
                           6 + static_cast<int>(rng.next() % 11)));
  pool.push_back(d.constant(12, rng.next_in(-2048, 2047)));
  auto pick = [&]() {
    return pool[static_cast<size_t>(rng.next() % pool.size())];
  };
  for (int i = 0; i < 50; ++i) {
    NodeId a = pick(), b = pick();
    int w = 4 + static_cast<int>(rng.next() % 29);
    switch (rng.next() % 7) {
      case 0: pool.push_back(d.add(a, b, w)); break;
      case 1: pool.push_back(d.sub(a, b, w)); break;
      case 2: pool.push_back(d.mul(a, b, std::min(w + 12, 44))); break;
      case 3: pool.push_back(d.bxor(a, d.sext(b, d.node(a).width),
                                    d.node(a).width)); break;
      case 4: pool.push_back(d.mux(d.sge(a, b), d.sext(a, w),
                                   d.sext(b, w), w)); break;
      case 5: pool.push_back(d.shl(a, static_cast<int>(rng.next() % 4), w));
        break;
      default: pool.push_back(d.ashr(a, static_cast<int>(rng.next() % 4),
                                     d.node(a).width));
        break;
    }
  }
  d.output("out0", pool[pool.size() - 1]);
  d.output("out1", pool[pool.size() - 2]);
  return d;
}

/// Streamed equivalence: for every output, the pipelined design at tick
/// t + latency must equal the combinational design at tick t.
void expect_streamed_equal(const Design& fn, const ScheduleResult& sr,
                           uint64_t input_seed, const std::string& what) {
  ASSERT_GE(sr.latency, 1) << what;
  sim::Simulator comb(fn);
  sim::Simulator pipe(sr.design);
  SplitMix64 rng(input_seed);
  const int kTicks = 20;
  std::vector<std::vector<int64_t>> expected, got;
  for (int t = 0; t < kTicks + sr.latency; ++t) {
    for (NodeId in : fn.inputs()) {
      const auto& n = fn.node(in);
      int64_t v = rng.next_in(-(1 << (n.width - 1)), (1 << (n.width - 1)) - 1);
      comb.set_input(n.name, v);
      pipe.set_input(n.name, v);
    }
    comb.eval();
    pipe.eval();
    if (t < kTicks) {
      std::vector<int64_t> row;
      for (NodeId out : fn.outputs())
        row.push_back(comb.output_i64(fn.node(out).name));
      expected.push_back(std::move(row));
    }
    if (t >= sr.latency) {
      std::vector<int64_t> row;
      for (NodeId out : fn.outputs())
        row.push_back(pipe.output_i64(fn.node(out).name));
      got.push_back(std::move(row));
    }
    comb.step();
    pipe.step();
  }
  ASSERT_EQ(expected.size(), got.size()) << what;
  for (size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(expected[i], got[i]) << what << " tick " << i;
}

// ---- extraction contract ---------------------------------------------------

TEST(Schedule, DelayBalanceIsBitwiseIdenticalToTheXlsPipeliner) {
  for (uint64_t seed : {301u, 302u, 303u, 304u}) {
    const Design fn = random_function(seed);
    for (int stages : {1, 3, 7}) {
      const xls::PipelineResult via_xls = xls::pipeline_function(fn, stages);
      ScheduleOptions so;
      so.stages = stages;
      const ScheduleResult direct = schedule_pipeline(fn, so);
      EXPECT_EQ(netlist::dump_text(direct.design),
                netlist::dump_text(via_xls.design))
          << "seed " << seed << " stages " << stages;
      EXPECT_EQ(direct.latency, via_xls.latency);
      EXPECT_EQ(direct.merged_stages, via_xls.merged_stages);
      EXPECT_EQ(direct.pipeline_regs, via_xls.pipeline_regs);
    }
  }
}

TEST(Schedule, ZeroStagesIsACombinationalPassthrough) {
  const Design fn = random_function(310);
  const ScheduleResult sr = schedule_pipeline(fn, ScheduleOptions{});
  EXPECT_EQ(sr.latency, 0);
  EXPECT_EQ(sr.pipeline_regs, 0);
  EXPECT_EQ(netlist::dump_text(sr.design), netlist::dump_text(fn));
}

TEST(Schedule, RejectsSequentialDesigns) {
  Design d("seq");
  NodeId r = d.reg(8, 0, "r");
  d.set_reg_next(r, d.add(r, d.constant(8, 1), 8));
  d.output("r", r);
  d.validate();
  ScheduleOptions so;
  so.stages = 2;
  EXPECT_THROW(schedule_pipeline(d, so), Error);
}

// ---- objectives and retiming ----------------------------------------------

struct Case {
  uint64_t seed;
  int stages;
};

class ScheduledFunction : public ::testing::TestWithParam<Case> {};

TEST_P(ScheduledFunction, RegminNeverUsesMoreRegisterBitsThanBalance) {
  const Design fn = random_function(GetParam().seed);
  ScheduleOptions balance;
  balance.stages = GetParam().stages;
  ScheduleOptions regmin = balance;
  regmin.objective = ScheduleObjective::kRegisterMin;
  const ScheduleResult b = schedule_pipeline(fn, balance);
  const ScheduleResult r = schedule_pipeline(fn, regmin);
  EXPECT_LE(r.pipeline_regs, b.pipeline_regs);
  EXPECT_EQ(r.latency, b.latency);  // same schedule depth, cheaper cuts
  expect_streamed_equal(fn, r, GetParam().seed * 5 + 1, "regmin");
}

TEST_P(ScheduledFunction, RetimedBoundariesPreserveBehaviour) {
  const Design fn = random_function(GetParam().seed);
  ScheduleOptions so;
  so.stages = GetParam().stages;
  so.retime_boundaries = true;
  expect_streamed_equal(fn, schedule_pipeline(fn, so),
                        GetParam().seed * 9 + 4, "retime");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ScheduledFunction,
    ::testing::Values(Case{321, 2}, Case{322, 2}, Case{323, 4}, Case{324, 4},
                      Case{325, 7}, Case{326, 7}),
    [](const ::testing::TestParamInfo<Case>& info) {
      return "s" + std::to_string(info.param.seed) + "_d" +
             std::to_string(info.param.stages);
    });

TEST(Schedule, RetimingRegistersTheNarrowSideOfAnExtensionSeam) {
  // One seam, one boundary: a 2-stage split of sext(a) * sext(b) cuts at
  // the extended values. Retiming must register the 8-bit sources instead
  // of the 32-bit extensions, with identical streamed behaviour.
  Design d("seam");
  NodeId a = d.input("a", 8);
  NodeId b = d.input("b", 8);
  NodeId wide_a = d.sext(a, 32);
  NodeId wide_b = d.sext(b, 32);
  d.output("p", d.mul(wide_a, wide_b, 40));
  d.validate();

  ScheduleOptions plain;
  plain.stages = 2;
  ScheduleOptions retimed = plain;
  retimed.retime_boundaries = true;
  const ScheduleResult p = schedule_pipeline(d, plain);
  const ScheduleResult r = schedule_pipeline(d, retimed);
  EXPECT_LT(r.pipeline_regs, p.pipeline_regs);
  expect_streamed_equal(d, r, 77, "seam-retime");
  expect_streamed_equal(d, p, 77, "seam-plain");
}

}  // namespace
}  // namespace hlshc::synth
