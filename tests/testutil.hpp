// Shared helpers for the test suites.
#pragma once

#include "base/rng.hpp"
#include "idct/block.hpp"
#include "idct/chenwang.hpp"
#include "idct/reference.hpp"

namespace hlshc::testutil {

/// Uniform random 12-bit coefficient block. Exercises the full input port
/// range, but note: such blocks are NOT valid DCT data and can overflow
/// 32-bit intermediates inside the Chen-Wang butterfly. Only the 32-bit
/// design families (Verilog and the C/HLS flows, which wrap exactly like
/// the int32 reference) are bit-exact on these.
inline idct::Block uniform_coeff_block(SplitMix64& rng) {
  idct::Block b{};
  for (auto& v : b)
    v = static_cast<int32_t>(rng.next_in(idct::kCoeffMin, idct::kCoeffMax));
  return b;
}

/// A *realistic* coefficient block: the forward DCT of random 9-bit spatial
/// data, i.e. what a JPEG/MPEG decoder actually feeds an IDCT. On this
/// domain every intermediate stays within 32 bits, so all design families
/// (including the width-inferred ones, whose arithmetic never wraps) are
/// bit-identical to the software model. This mirrors IEEE 1180-1990, which
/// also generates test inputs through the forward transform.
inline idct::Block realistic_coeff_block(SplitMix64& rng) {
  idct::Block spatial{};
  for (auto& v : spatial) v = static_cast<int32_t>(rng.next_in(-256, 255));
  return idct::forward_dct_reference(spatial);
}

/// The bit-exact software model all hardware is checked against.
inline idct::Block software_idct(const idct::Block& in) {
  idct::Block b = in;
  idct::idct_2d(b);
  return b;
}

}  // namespace hlshc::testutil
