// Shared helpers for the test suites.
#pragma once

#include <string>
#include <vector>

#include "base/rng.hpp"
#include "idct/block.hpp"
#include "idct/chenwang.hpp"
#include "idct/reference.hpp"
#include "netlist/ir.hpp"

namespace hlshc::testutil {

/// Uniform random 12-bit coefficient block. Exercises the full input port
/// range, but note: such blocks are NOT valid DCT data and can overflow
/// 32-bit intermediates inside the Chen-Wang butterfly. Only the 32-bit
/// design families (Verilog and the C/HLS flows, which wrap exactly like
/// the int32 reference) are bit-exact on these.
inline idct::Block uniform_coeff_block(SplitMix64& rng) {
  idct::Block b{};
  for (auto& v : b)
    v = static_cast<int32_t>(rng.next_in(idct::kCoeffMin, idct::kCoeffMax));
  return b;
}

/// A *realistic* coefficient block: the forward DCT of random 9-bit spatial
/// data, i.e. what a JPEG/MPEG decoder actually feeds an IDCT. On this
/// domain every intermediate stays within 32 bits, so all design families
/// (including the width-inferred ones, whose arithmetic never wraps) are
/// bit-identical to the software model. This mirrors IEEE 1180-1990, which
/// also generates test inputs through the forward transform.
inline idct::Block realistic_coeff_block(SplitMix64& rng) {
  idct::Block spatial{};
  for (auto& v : spatial) v = static_cast<int32_t>(rng.next_in(-256, 255));
  return idct::forward_dct_reference(spatial);
}

/// The bit-exact software model all hardware is checked against.
inline idct::Block software_idct(const idct::Block& in) {
  idct::Block b = in;
  idct::idct_2d(b);
  return b;
}

/// A random but valid design: every op kind, mixed widths, registers with
/// and without enables, and a memory with read and write ports.
inline netlist::Design random_design(uint64_t seed) {
  SplitMix64 rng(seed);
  netlist::Design d("fuzz_" + std::to_string(seed));

  const int widths[] = {1, 2, 5, 8, 12, 16, 31, 32, 33, 63, 64};
  auto pick_width = [&] { return widths[rng.next_in(0, 10)]; };

  std::vector<netlist::NodeId> pool;
  const int n_inputs = static_cast<int>(rng.next_in(2, 4));
  for (int i = 0; i < n_inputs; ++i)
    pool.push_back(d.input("in" + std::to_string(i), pick_width()));
  const int n_consts = static_cast<int>(rng.next_in(1, 3));
  for (int i = 0; i < n_consts; ++i) {
    int w = pick_width();
    pool.push_back(d.constant(w, static_cast<int64_t>(rng.next())));
  }

  std::vector<netlist::NodeId> regs;
  const int n_regs = static_cast<int>(rng.next_in(1, 3));
  for (int i = 0; i < n_regs; ++i) {
    int w = pick_width();
    netlist::NodeId r = d.reg(w, static_cast<int64_t>(rng.next()),
                     "r" + std::to_string(i));
    regs.push_back(r);
    pool.push_back(r);
  }

  const int mem_width = pick_width();
  const int mem_id = d.add_memory("m", mem_width, 8);

  auto any = [&] { return pool[rng.next_in(0, static_cast<long>(pool.size()) - 1)]; };
  /// Adapt `n` to exactly `w` bits (slice down or extend up).
  auto fit = [&](netlist::NodeId n, int w) {
    int have = d.node(n).width;
    if (have == w) return n;
    if (have > w) return d.slice(n, w - 1, 0);
    return rng.next_in(0, 1) ? d.sext(n, w) : d.zext(n, w);
  };

  const int n_ops = static_cast<int>(rng.next_in(30, 60));
  for (int i = 0; i < n_ops; ++i) {
    int w = pick_width();
    netlist::NodeId a = any(), b = any();
    netlist::NodeId made = netlist::kInvalidNode;
    switch (rng.next_in(0, 22)) {
      case 0: made = d.add(a, b, w); break;
      case 1: made = d.sub(a, b, w); break;
      case 2: made = d.mul(a, b, w); break;
      case 3: made = d.neg(a, w); break;
      case 4:
        made = d.shl(a, static_cast<int>(rng.next_in(0, 70)), w);
        break;
      case 5:
        made = d.ashr(a, static_cast<int>(rng.next_in(0, 70)), w);
        break;
      case 6:
        made = d.lshr(a, static_cast<int>(rng.next_in(0, 70)), w);
        break;
      case 7: made = d.band(a, b, w); break;
      case 8: made = d.bor(a, b, w); break;
      case 9: made = d.bxor(a, b, w); break;
      case 10: made = d.bnot(a, w); break;
      case 11: made = d.eq(a, b); break;
      case 12: made = d.ne(a, b); break;
      case 13: made = d.slt(a, b); break;
      case 14: made = d.sle(a, b); break;
      case 15: made = d.sgt(a, b); break;
      case 16: made = d.sge(a, b); break;
      case 17: made = d.ult(a, b); break;
      case 18: made = d.mux(fit(a, 1), a, b, w); break;
      case 19: {
        int have = d.node(a).width;
        int lo = static_cast<int>(rng.next_in(0, have - 1));
        int hi = static_cast<int>(rng.next_in(lo, have - 1));
        made = d.slice(a, hi, lo);
        break;
      }
      case 20:
        if (d.node(a).width + d.node(b).width <= 64) {
          made = d.concat(a, b);
        } else {
          made = d.bxor(a, b, w);
        }
        break;
      case 21: made = d.sext(a, w >= d.node(a).width ? w : 64); break;
      case 22: made = d.zext(a, w >= d.node(a).width ? w : 64); break;
    }
    pool.push_back(made);
  }

  // Memory ports: read at a random address, write gated by a 1-bit enable.
  netlist::NodeId addr = fit(any(), 5);  // 5-bit address over depth 8 exercises wrap
  pool.push_back(d.mem_read(mem_id, addr));
  d.mem_write(mem_id, fit(any(), 3), fit(any(), mem_width), fit(any(), 1));

  // Close the register loops (half with enables).
  for (size_t i = 0; i < regs.size(); ++i) {
    netlist::NodeId next = fit(any(), d.node(regs[i]).width);
    if (i % 2 == 0) {
      d.set_reg_next(regs[i], next, fit(any(), 1));
    } else {
      d.set_reg_next(regs[i], next);
    }
  }

  // A few observable outputs (every node is compared anyway).
  for (int i = 0; i < 3; ++i)
    d.output("out" + std::to_string(i), any());
  return d;
}

}  // namespace hlshc::testutil
