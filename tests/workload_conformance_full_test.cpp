// Registry conformance, full matrix (slow label): every builder — including
// the slow ones the tier-1 slice skips — on more frames, non-realistic
// full-range stimulus, and with the optimizer both on and off.
#include "workload/workload.hpp"

#include <gtest/gtest.h>

#include "axis/testbench.hpp"
#include "sim/engine.hpp"
#include "tools/compile.hpp"

namespace hlshc {
namespace {

TEST(WorkloadConformanceFull, AllBuildersAllStimuliBothOptimizerSettings) {
  for (const auto& [name, spec] : workload::Registry::instance().all()) {
    for (bool realistic : {true, false}) {
      if (!realistic && !spec.full_range_safe) continue;
      const auto inputs = workload::eval_input_set(spec, 4, 2026, realistic);
      const auto want = workload::reference_outputs(spec, inputs);
      for (const auto& builder : spec.builders) {
        netlist::Design design = builder.build();
        for (bool optimize : {true, false}) {
          SCOPED_TRACE(name + "." + builder.name +
                       (realistic ? " realistic" : " full-range") +
                       (optimize ? " opt" : " raw"));
          tools::CompileOptions co;
          co.optimize = optimize;
          tools::CompiledDesign cd = tools::compile(design, co);
          std::unique_ptr<sim::Engine> sim = sim::make_engine(cd.design);
          axis::StreamTestbench tb(*sim);
          auto got = tb.run(inputs);
          EXPECT_TRUE(tb.monitor().clean());
          EXPECT_EQ(workload::diff_outputs(spec, want, got), 0);
        }
      }
    }
  }
}

TEST(WorkloadConformanceFull, CampaignInputsMatchJudgeOnReference) {
  // The campaign stimulus path feeds the same judge: the reference model's
  // own outputs must always be accepted.
  for (const auto& [name, spec] : workload::Registry::instance().all()) {
    SCOPED_TRACE(name);
    auto inputs = workload::campaign_input_set(spec, 4, 1);
    auto want = workload::reference_outputs(spec, inputs);
    EXPECT_EQ(workload::diff_outputs(spec, want, want), 0);
  }
}

}  // namespace
}  // namespace hlshc
