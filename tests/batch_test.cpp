// Differential tests: the lane-batched engine against the scalar oracle.
//
// sim::BatchSimulator packs N independent runs into one instruction-stream
// sweep; its contract is that every lane's trajectory is bitwise-identical
// to the same run on a scalar sim::CompiledSimulator. Layers of evidence:
//
//   1. randomized netlists (the same testutil::random_design space the
//      compiled-vs-interpreter suite fuzzes) driven with per-lane stimulus,
//      every node of every lane compared against a scalar engine after
//      every eval, at several lane counts;
//   2. per-lane fault injection (every LaneFault kind, including input and
//      hoisted-const targets) against a scalar engine running the
//      equivalent FaultInjector, plus disarm/heal parity;
//   3. lane retirement: surviving lanes keep their exact trajectories
//      while columns compact away, and reset_all() revives the batch;
//   4. fault campaigns classified at several {lanes, jobs} combinations,
//      counts AND the per-run log bitwise identical to the scalar loop,
//      for every registered workload;
//   5. core::evaluate_axis_design with lanes > 1 agrees with the scalar
//      evaluation;
//   6. concurrent ExecPlan::for_design first use (the TSan target) and the
//      batch utilization counters.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "base/rng.hpp"
#include "core/evaluate.hpp"
#include "fault/campaign.hpp"
#include "fault/model.hpp"
#include "netlist/exec_plan.hpp"
#include "obs/metrics.hpp"
#include "rtl/designs.hpp"
#include "sim/batch.hpp"
#include "sim/compiled.hpp"
#include "testutil.hpp"
#include "workload/workload.hpp"

namespace hlshc {
namespace {

using netlist::Design;
using netlist::NodeId;
using netlist::Op;
using testutil::random_design;

void expect_lane_equals_scalar(const sim::BatchSimulator& batch, int lane,
                               const sim::CompiledSimulator& scalar,
                               const Design& d, uint64_t seed, int cycle) {
  for (size_t i = 0; i < d.node_count(); ++i) {
    NodeId id = static_cast<NodeId>(i);
    ASSERT_EQ(batch.value(lane, id), scalar.value(id))
        << "seed " << seed << " cycle " << cycle << " lane " << lane
        << " node " << id << " (" << netlist::op_name(d.node(id).op)
        << " w=" << d.node(id).width << ')';
  }
}

// ---- 1. every node, every cycle, every lane --------------------------------

class RandomNetlistBatchDiff : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomNetlistBatchDiff, EveryLaneMatchesScalarEveryCycle) {
  const uint64_t seed = GetParam();
  const Design d = random_design(seed);
  const std::vector<NodeId> ins(d.inputs().begin(), d.inputs().end());

  // 3 exercises the generic kernel, 4 and 8 the fixed-trip specializations.
  for (int lanes : {3, 4, 8}) {
    sim::BatchSimulator batch(d, lanes);
    std::vector<std::unique_ptr<sim::CompiledSimulator>> scalars;
    std::vector<SplitMix64> rngs;
    for (int l = 0; l < lanes; ++l) {
      scalars.push_back(std::make_unique<sim::CompiledSimulator>(d));
      rngs.emplace_back(seed * 64 + static_cast<uint64_t>(l));
    }

    for (int cycle = 0; cycle < 16; ++cycle) {
      for (int l = 0; l < lanes; ++l) {
        for (NodeId in : ins) {
          const int64_t v = static_cast<int64_t>(rngs[l].next());
          batch.poke_input(l, in, v);
          scalars[l]->poke(in, v);
        }
      }
      batch.eval_all();
      for (int l = 0; l < lanes; ++l) {
        scalars[l]->eval();
        expect_lane_equals_scalar(batch, l, *scalars[l], d, seed, cycle);
      }
      batch.step_all();
      for (int l = 0; l < lanes; ++l) scalars[l]->step();
      ASSERT_EQ(batch.cycle(), scalars[0]->cycle());
    }

    // Mid-run reset must restore every lane to the scalar reset state.
    batch.reset_all();
    batch.eval_all();
    for (int l = 0; l < lanes; ++l) {
      scalars[l]->reset();
      scalars[l]->eval();
      expect_lane_equals_scalar(batch, l, *scalars[l], d, seed, -1);
    }
  }
}

// ---- 2. per-lane fault injection -------------------------------------------

/// The scalar reference injector: one fault::FaultSite, same semantics as
/// the campaign's internal SiteInjector (campaign.cpp).
class ScalarSiteInjector : public sim::FaultInjector {
 public:
  explicit ScalarSiteInjector(const fault::FaultSite& site) : site_(site) {}

  std::vector<NodeId> combinational_targets() const override {
    switch (site_.kind) {
      case fault::FaultKind::kStuckAt0:
      case fault::FaultKind::kStuckAt1:
      case fault::FaultKind::kTransient:
        return {site_.node};
      default:
        return {};
    }
  }

  BitVec transform(NodeId, const BitVec& value, uint64_t cycle) override {
    const int w = value.width();
    const BitVec mask(w, static_cast<int64_t>(uint64_t{1} << site_.bit));
    switch (site_.kind) {
      case fault::FaultKind::kStuckAt0:
        return BitVec::band(value, BitVec::bnot(mask, w), w);
      case fault::FaultKind::kStuckAt1:
        return BitVec::bor(value, mask, w);
      case fault::FaultKind::kTransient:
        return cycle == site_.cycle ? BitVec::bxor(value, mask, w) : value;
      default:
        return value;
    }
  }

  void at_cycle(sim::Engine& sim) override {
    if (fired_ || sim.cycle() != site_.cycle) return;
    if (site_.kind == fault::FaultKind::kSeuReg) {
      sim.flip_reg_bit(site_.node, site_.bit);
      fired_ = true;
    } else if (site_.kind == fault::FaultKind::kSeuMem) {
      sim.flip_mem_bit(site_.mem, site_.addr, site_.bit);
      fired_ = true;
    }
  }

 private:
  fault::FaultSite site_;
  bool fired_ = false;
};

sim::LaneFault to_lane_fault(const fault::FaultSite& s) {
  sim::LaneFault f;
  switch (s.kind) {
    case fault::FaultKind::kSeuReg: f.kind = sim::LaneFault::Kind::kSeuReg; break;
    case fault::FaultKind::kSeuMem: f.kind = sim::LaneFault::Kind::kSeuMem; break;
    case fault::FaultKind::kStuckAt0: f.kind = sim::LaneFault::Kind::kStuck0; break;
    case fault::FaultKind::kStuckAt1: f.kind = sim::LaneFault::Kind::kStuck1; break;
    case fault::FaultKind::kTransient:
      f.kind = sim::LaneFault::Kind::kTransient;
      break;
  }
  f.node = s.node;
  f.mem = s.mem;
  f.addr = s.addr;
  f.bit = s.bit;
  f.cycle = s.cycle;
  return f;
}

/// First node of the given op kind with width > `bit`, or kInvalidNode.
NodeId find_node(const Design& d, Op op, int bit) {
  for (size_t i = 0; i < d.node_count(); ++i) {
    const netlist::Node& n = d.node(static_cast<NodeId>(i));
    if (n.op == op && n.width > bit) return static_cast<NodeId>(i);
  }
  return netlist::kInvalidNode;
}

class RandomNetlistLaneFaults : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomNetlistLaneFaults, EveryLaneFaultKindMatchesScalarInjector) {
  const uint64_t seed = GetParam();
  const Design d = random_design(seed);
  const std::vector<NodeId> ins(d.inputs().begin(), d.inputs().end());

  // One fault per lane, covering every kind plus input/const stuck-at
  // targets (the slots the fast stream never rewrites) and one clean lane.
  std::vector<fault::FaultSite> sites;
  {
    fault::FaultSite s;
    s.kind = fault::FaultKind::kSeuReg;
    s.node = find_node(d, Op::Reg, 0);
    s.cycle = 3;
    sites.push_back(s);
    s = {};
    s.kind = fault::FaultKind::kSeuMem;
    s.mem = 0;
    s.addr = 2;
    s.bit = d.memories()[0].width - 1;
    s.cycle = 0;  // cycle-0 SEU: fires inside reset
    sites.push_back(s);
    s = {};
    s.kind = fault::FaultKind::kStuckAt0;
    s.node = d.outputs()[0];
    sites.push_back(s);
    s = {};
    s.kind = fault::FaultKind::kStuckAt1;
    s.node = find_node(d, Op::Input, 0);
    sites.push_back(s);
    s = {};
    s.kind = fault::FaultKind::kTransient;
    s.node = find_node(d, Op::Const, 0);
    s.cycle = 5;
    sites.push_back(s);
  }

  const int lanes = static_cast<int>(sites.size()) + 1;  // +1 fault-free
  sim::BatchSimulator batch(d, lanes);
  std::vector<std::unique_ptr<sim::CompiledSimulator>> scalars;
  std::vector<std::unique_ptr<ScalarSiteInjector>> injectors;
  for (int l = 0; l < lanes; ++l) {
    scalars.push_back(std::make_unique<sim::CompiledSimulator>(d));
    if (l < static_cast<int>(sites.size())) {
      if (sites[l].node == netlist::kInvalidNode &&
          sites[l].kind != fault::FaultKind::kSeuMem)
        continue;  // design has no node of that kind; lane stays clean
      batch.arm_lane_fault(l, to_lane_fault(sites[l]));
      injectors.push_back(std::make_unique<ScalarSiteInjector>(sites[l]));
      scalars[l]->set_fault_injector(injectors.back().get());
    }
  }
  batch.reset_all();
  for (auto& s : scalars) s->reset();

  SplitMix64 rng(seed ^ 0xabcdefull);
  for (int cycle = 0; cycle < 12; ++cycle) {
    for (NodeId in : ins) {
      const int64_t v = static_cast<int64_t>(rng.next());
      for (int l = 0; l < lanes; ++l) {
        batch.poke_input(l, in, v);
        scalars[l]->poke(in, v);
      }
    }
    batch.eval_all();
    for (int l = 0; l < lanes; ++l) {
      scalars[l]->eval();
      expect_lane_equals_scalar(batch, l, *scalars[l], d, seed, cycle);
    }
    batch.step_all();
    for (auto& s : scalars) s->step();
  }

  // Disarm heals every lane — including the const slot the transient
  // rewrote — back to the fault-free trajectory.
  for (int l = 0; l < lanes; ++l) {
    batch.disarm_lane_fault(l);
    scalars[l]->set_fault_injector(nullptr);
  }
  batch.eval_all();
  for (int l = 0; l < lanes; ++l) {
    scalars[l]->eval();
    expect_lane_equals_scalar(batch, l, *scalars[l], d, seed, 999);
  }
}

// ---- 3. lane retirement ----------------------------------------------------

TEST(BatchRetirement, SurvivorsKeepExactTrajectoriesAcrossCompaction) {
  const uint64_t seed = 11;
  const Design d = random_design(seed);
  const std::vector<NodeId> ins(d.inputs().begin(), d.inputs().end());
  const int lanes = 8;

  sim::BatchSimulator batch(d, lanes);
  std::vector<std::unique_ptr<sim::CompiledSimulator>> scalars;
  std::vector<SplitMix64> rngs;
  for (int l = 0; l < lanes; ++l) {
    scalars.push_back(std::make_unique<sim::CompiledSimulator>(d));
    rngs.emplace_back(seed + static_cast<uint64_t>(l) * 1337);
  }

  // Retire lanes one by one (crossing the deferred-compaction thresholds
  // at 4, 2 and 1 live lanes); survivors must stay bit-exact throughout.
  const int retire_order[] = {2, 5, 0, 7, 3, 6, 1};
  std::vector<bool> dead(static_cast<size_t>(lanes), false);
  int retired = 0;
  for (int cycle = 0; cycle < 24; ++cycle) {
    if (cycle > 0 && cycle % 3 == 0 && retired < 7) {
      const int victim = retire_order[retired++];
      batch.retire_lane(victim);
      dead[static_cast<size_t>(victim)] = true;
      EXPECT_TRUE(batch.lane_retired(victim));
      EXPECT_EQ(batch.active_lanes(), lanes - retired);
    }
    for (int l = 0; l < lanes; ++l) {
      if (dead[static_cast<size_t>(l)]) continue;
      for (NodeId in : ins) {
        const int64_t v = static_cast<int64_t>(rngs[l].next());
        batch.poke_input(l, in, v);
        scalars[l]->poke(in, v);
      }
    }
    batch.eval_all();
    for (int l = 0; l < lanes; ++l) {
      if (dead[static_cast<size_t>(l)]) continue;
      scalars[l]->eval();
      expect_lane_equals_scalar(batch, l, *scalars[l], d, seed, cycle);
    }
    batch.step_all();
    for (int l = 0; l < lanes; ++l)
      if (!dead[static_cast<size_t>(l)]) scalars[l]->step();
  }
  EXPECT_EQ(batch.active_lanes(), 1);

  // reset_all revives every lane at the scalar reset state.
  batch.reset_all();
  EXPECT_EQ(batch.active_lanes(), lanes);
  batch.eval_all();
  scalars[0]->reset();
  scalars[0]->eval();
  for (int l = 0; l < lanes; ++l) {
    EXPECT_FALSE(batch.lane_retired(l));
    expect_lane_equals_scalar(batch, l, *scalars[0], d, seed, -1);
  }
}

// ---- 4. campaign classification parity -------------------------------------

fault::CampaignReport campaign_at(const Design& d,
                                  const workload::WorkloadSpec& spec,
                                  const std::vector<fault::FaultSite>& sites,
                                  int lanes, int jobs) {
  fault::CampaignOptions opts;
  opts.matrices = 2;
  opts.max_cycles = 20000;
  opts.keep_runs = true;
  opts.progress_every = 0;
  opts.lanes = lanes;
  opts.jobs = jobs;
  return fault::run_campaign(d, spec, sites, opts);
}

void expect_reports_equal(const fault::CampaignReport& a,
                          const fault::CampaignReport& b,
                          const std::string& what) {
  EXPECT_EQ(a.counts.masked, b.counts.masked) << what;
  EXPECT_EQ(a.counts.sdc, b.counts.sdc) << what;
  EXPECT_EQ(a.counts.detected, b.counts.detected) << what;
  EXPECT_EQ(a.counts.hang, b.counts.hang) << what;
  ASSERT_EQ(a.runs.size(), b.runs.size()) << what;
  for (size_t i = 0; i < a.runs.size(); ++i) {
    EXPECT_EQ(a.runs[i].outcome, b.runs[i].outcome)
        << what << " site " << i << " ("
        << a.runs[i].site.to_string() << ')';
    EXPECT_EQ(a.runs[i].site.to_string(), b.runs[i].site.to_string())
        << what << " site " << i;
  }
}

TEST(BatchCampaign, BitwiseIdenticalAcrossLanesAndJobs) {
  const Design d = rtl::build_verilog_opt2();
  const workload::WorkloadSpec& spec =
      workload::Registry::instance().get("idct");
  // SEU and stuck-at sites: the latter exercise the injected (slow-path)
  // batched stream, the former the fast stream + per-lane flip schedule.
  std::vector<fault::FaultSite> sites = fault::sample_seu_sites(d, 24, 60, 9);
  for (const fault::FaultSite& s : fault::sample_stuck_sites(d, 12, 10))
    sites.push_back(s);

  const fault::CampaignReport scalar = campaign_at(d, spec, sites, 1, 1);
  ASSERT_EQ(scalar.runs.size(), sites.size());
  for (int lanes : {4, 32}) {
    for (int jobs : {1, 4}) {
      const fault::CampaignReport batched =
          campaign_at(d, spec, sites, lanes, jobs);
      expect_reports_equal(scalar, batched,
                           "lanes=" + std::to_string(lanes) +
                               " jobs=" + std::to_string(jobs));
    }
  }
}

TEST(BatchCampaign, RefillingStreamMatchesScalarOnHangHeavySites) {
  // Hang sites are where the streaming refill earns its keep: a lane that
  // runs to its cycle budget frees up late, and the refill logic must slot
  // fresh sites into the other lanes without perturbing anyone's clock.
  // A tight cycle budget turns a good fraction of stuck-at sites into
  // hangs; the streamed lanes=8 jobs=1 path must classify every site
  // exactly as the scalar path does.
  const Design d = rtl::build_verilog_opt2();
  const workload::WorkloadSpec& spec =
      workload::Registry::instance().get("idct");
  std::vector<fault::FaultSite> sites = fault::sample_stuck_sites(d, 24, 11);
  for (const fault::FaultSite& s : fault::sample_seu_sites(d, 8, 60, 5))
    sites.push_back(s);

  fault::CampaignOptions opts;
  opts.matrices = 1;
  opts.max_cycles = 300;  // tight enough that stalled streams hit the budget
  opts.keep_runs = true;
  opts.progress_every = 0;
  opts.lanes = 1;
  opts.jobs = 1;
  const fault::CampaignReport scalar = fault::run_campaign(d, spec, sites, opts);
  ASSERT_GE(scalar.counts.hang, 1) << "budget too generous: no hang sites";
  ASSERT_LT(scalar.counts.hang, static_cast<int>(sites.size()))
      << "budget too tight: every site hangs";

  opts.lanes = 8;
  const fault::CampaignReport batched = fault::run_campaign(d, spec, sites, opts);
  expect_reports_equal(scalar, batched, "hang-heavy lanes=8 jobs=1");
}

TEST(BatchCampaign, EveryRegisteredWorkloadClassifiesIdentically) {
  const workload::Registry& reg = workload::Registry::instance();
  for (const std::string& name : reg.names()) {
    const workload::WorkloadSpec& spec = reg.get(name);
    // The cheapest tier-1 builder keeps the sweep unit-fast.
    const workload::BuilderInfo* builder = nullptr;
    for (const workload::BuilderInfo& b : spec.builders)
      if (!b.slow) { builder = &b; break; }
    ASSERT_NE(builder, nullptr) << name;
    const Design d = builder->build();
    const std::vector<fault::FaultSite> sites =
        fault::sample_seu_sites(d, 12, 40, 3);
    const fault::CampaignReport scalar = campaign_at(d, spec, sites, 1, 1);
    const fault::CampaignReport batched = campaign_at(d, spec, sites, 8, 1);
    expect_reports_equal(scalar, batched, name + "/" + builder->name);
  }
}

// ---- 5. batched evaluation -------------------------------------------------

TEST(BatchEvaluate, LanedEvaluationAgreesWithScalar) {
  const Design d = rtl::build_verilog_opt2();
  const workload::WorkloadSpec& spec =
      workload::Registry::instance().get("idct");
  core::EvaluateOptions opts;
  opts.matrices = 4;
  const core::DesignEvaluation scalar = core::evaluate_axis_design(d, spec, opts);
  opts.lanes = 8;
  const core::DesignEvaluation batched =
      core::evaluate_axis_design(d, spec, opts);
  EXPECT_TRUE(scalar.functional);
  EXPECT_TRUE(batched.functional);
  // Lane 0 replays the scalar stimulus: measured timing is identical.
  EXPECT_EQ(batched.latency_cycles, scalar.latency_cycles);
  EXPECT_EQ(batched.periodicity_cycles, scalar.periodicity_cycles);
  EXPECT_EQ(batched.throughput_mops, scalar.throughput_mops);
}

// ---- 6. shared-plan thread safety and utilization counters -----------------

TEST(BatchInfra, ExecPlanConcurrentFirstUseYieldsOneSharedPlan) {
  // Fresh design each run: the first for_design() call races 8 threads
  // into the per-design cache. Run under TSan (the CI tsan job builds this
  // test) this pins the compile-once lock discipline.
  const Design d = random_design(0xbeef);
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const netlist::ExecPlan>> plans(kThreads);
  std::atomic<int> barrier{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      barrier.fetch_add(1);
      while (barrier.load() < kThreads) {}
      plans[static_cast<size_t>(t)] = netlist::ExecPlan::for_design(d);
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) {
    ASSERT_NE(plans[static_cast<size_t>(t)], nullptr);
    EXPECT_EQ(plans[static_cast<size_t>(t)].get(), plans[0].get())
        << "thread " << t << " compiled a duplicate plan";
  }
  EXPECT_GT(plans[0]->depth(), 0);
}

TEST(BatchInfra, UtilizationCountersTrackSweepsAndLanes) {
  obs::set_enabled(true);
  obs::registry().counter("sim.batch.sweeps")->add(0);
  const int64_t sweeps0 = obs::registry().counter("sim.batch.sweeps")->value();
  const int64_t lanes0 = obs::registry().counter("sim.batch.lanes")->value();
  const int64_t masked0 =
      obs::registry().counter("fault.lanes_masked")->value();

  const Design d = rtl::build_verilog_opt2();
  const workload::WorkloadSpec& spec =
      workload::Registry::instance().get("idct");
  const std::vector<fault::FaultSite> sites =
      fault::sample_seu_sites(d, 12, 40, 5);
  campaign_at(d, spec, sites, 4, 1);
  obs::set_enabled(false);

  // 12 sites over 4 lanes stream through at least one refilling sweep of
  // 12 lane-runs (each site also replays reference runs; >= keeps the
  // bound implementation-free).
  EXPECT_GE(obs::registry().counter("sim.batch.sweeps")->value(), sweeps0 + 1);
  EXPECT_GE(obs::registry().counter("sim.batch.lanes")->value(), lanes0 + 12);
  EXPECT_GE(obs::registry().counter("fault.lanes_masked")->value(), masked0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomNetlistBatchDiff,
                         ::testing::Range<uint64_t>(1, 21));
INSTANTIATE_TEST_SUITE_P(Seeds, RandomNetlistLaneFaults,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace hlshc
