// Tests for the observability layer: the JSON model and parser, the metrics
// registry, the Chrome-trace tracer (including an end-to-end testbench run
// parsed back for well-formedness), and the RunReport envelope.
#include <gtest/gtest.h>

#include <fstream>
#include <iterator>
#include <limits>

#include "axis/testbench.hpp"
#include "base/rng.hpp"
#include "idct/reference.hpp"
#include "obs/event_log.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "rtl/designs.hpp"
#include "sim/engine.hpp"

namespace obs = hlshc::obs;

namespace {

std::vector<hlshc::idct::Block> input_blocks(int n) {
  hlshc::SplitMix64 rng(7);
  std::vector<hlshc::idct::Block> blocks;
  for (int i = 0; i < n; ++i) {
    hlshc::idct::Block spatial{};
    for (auto& v : spatial) v = static_cast<int32_t>(rng.next_in(-256, 255));
    blocks.push_back(hlshc::idct::forward_dct_reference(spatial));
  }
  return blocks;
}

/// Every obs test leaves the process-wide switches the way it found them.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(false);
    obs::registry().reset();
    obs::tracer().stop();
    obs::tracer().clear();
  }
  void TearDown() override { SetUp(); }
};

// ---- Json ------------------------------------------------------------------

TEST_F(ObsTest, JsonScalarRoundTrip) {
  EXPECT_EQ(obs::Json::number(int64_t{42}).dump(), "42");
  EXPECT_EQ(obs::Json::number(-7).dump(), "-7");
  EXPECT_EQ(obs::Json::boolean(true).dump(), "true");
  EXPECT_EQ(obs::Json().dump(), "null");
  EXPECT_EQ(obs::Json::string("a\"b\\c\n").dump(), "\"a\\\"b\\\\c\\n\"");
  EXPECT_EQ(obs::Json::number(1.5).dump(), "1.5");
}

TEST_F(ObsTest, JsonObjectKeepsInsertionOrder) {
  obs::Json o = obs::Json::object();
  o.set("zebra", obs::Json::number(1))
      .set("alpha", obs::Json::number(2))
      .set("mid", obs::Json::number(3));
  EXPECT_EQ(o.dump(), "{\"zebra\":1,\"alpha\":2,\"mid\":3}");
  // Overwriting keeps the original position.
  o.set("zebra", obs::Json::number(9));
  EXPECT_EQ(o.dump(), "{\"zebra\":9,\"alpha\":2,\"mid\":3}");
}

TEST_F(ObsTest, JsonParseRoundTrips) {
  const std::string text =
      "{\"a\":[1,2.5,-3],\"b\":{\"x\":true,\"y\":null},\"s\":\"hi\\n\"}";
  obs::Json parsed = obs::Json::parse(text);
  EXPECT_EQ(parsed.dump(), text);
  EXPECT_EQ(parsed.at("a")[0].as_int(), 1);
  EXPECT_DOUBLE_EQ(parsed.at("a")[1].as_number(), 2.5);
  EXPECT_TRUE(parsed.at("b").at("x").as_bool());
  EXPECT_TRUE(parsed.at("b").at("y").is_null());
  EXPECT_EQ(parsed.at("s").as_string(), "hi\n");
}

TEST_F(ObsTest, JsonParseAcceptsWhitespaceAndUnicodeEscapes) {
  obs::Json v = obs::Json::parse("  { \"k\" : [ \"\\u0041\\u00e9\" ] }  ");
  EXPECT_EQ(v.at("k")[0].as_string(), "A\xc3\xa9");
}

TEST_F(ObsTest, JsonParseRejectsMalformed) {
  EXPECT_THROW(obs::Json::parse(""), hlshc::Error);
  EXPECT_THROW(obs::Json::parse("{"), hlshc::Error);
  EXPECT_THROW(obs::Json::parse("{\"a\":}"), hlshc::Error);
  EXPECT_THROW(obs::Json::parse("[1,2"), hlshc::Error);
  EXPECT_THROW(obs::Json::parse("[1] trailing"), hlshc::Error);
  EXPECT_THROW(obs::Json::parse("tru"), hlshc::Error);
  EXPECT_THROW(obs::Json::parse("\"unterminated"), hlshc::Error);
  EXPECT_THROW(obs::Json::parse("{\"a\" 1}"), hlshc::Error);
}

TEST_F(ObsTest, JsonCheckedAccessorsThrowOnKindMismatch) {
  obs::Json num = obs::Json::number(1);
  EXPECT_THROW(num.as_string(), hlshc::Error);
  EXPECT_THROW(num.at("k"), hlshc::Error);
  obs::Json arr = obs::Json::array();
  EXPECT_THROW(arr[0], hlshc::Error);
  EXPECT_EQ(num.find("k"), nullptr);
}

TEST_F(ObsTest, JsonPrettyPrintParsesBack) {
  obs::Json o = obs::Json::object();
  o.set("list", obs::Json::array().push(obs::Json::number(1)));
  o.set("empty", obs::Json::object());
  std::string pretty = o.dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_EQ(obs::Json::parse(pretty).dump(), o.dump());
}

// ---- metrics registry ------------------------------------------------------

TEST_F(ObsTest, CounterGaugeTimerSemantics) {
  obs::Registry& reg = obs::registry();
  obs::Counter* c = reg.counter("t.count");
  c->add();
  c->add(41);
  EXPECT_EQ(c->value(), 42);
  // Same name -> same metric.
  EXPECT_EQ(reg.counter("t.count"), c);
  EXPECT_EQ(reg.counter("t.count")->value(), 42);

  reg.gauge("t.gauge")->set(2.5);
  reg.gauge("t.gauge")->set(3.5);  // last write wins
  EXPECT_DOUBLE_EQ(reg.gauge("t.gauge")->value(), 3.5);

  obs::Timer* t = reg.timer("t.timer");
  t->record_ns(100);
  t->record_ns(250);
  EXPECT_EQ(t->total_ns(), 350);
  EXPECT_EQ(t->count(), 2);
}

TEST_F(ObsTest, HistogramBucketsCountsAndPercentiles) {
  obs::Registry& reg = obs::registry();
  obs::Histogram* h = reg.histogram("t.hist");
  EXPECT_EQ(reg.histogram("t.hist"), h);  // same name -> same metric
  EXPECT_EQ(h->percentile(0.5), 0);       // empty: all quantiles 0

  // 90 fast samples and 10 slow ones: p50 lands in the fast band, p99 in
  // the slow band. Percentiles are conservative bucket upper bounds
  // (2^bit_width(v) - 1), so assert band membership, not exact values.
  for (int i = 0; i < 90; ++i) h->record(100);
  for (int i = 0; i < 10; ++i) h->record(100000);
  EXPECT_EQ(h->count(), 100);
  EXPECT_EQ(h->sum(), 90 * 100 + 10 * 100000);
  EXPECT_EQ(h->max(), 100000);
  EXPECT_GE(h->percentile(0.5), 100);
  EXPECT_LT(h->percentile(0.5), 100000);
  EXPECT_GE(h->percentile(0.99), 100000);

  h->record(0);          // zero lands in the first bucket, not UB
  h->record(-5);         // negatives clamp to zero
  EXPECT_EQ(h->count(), 102);

  // Histograms appear in the JSON export once non-empty, and reset clears.
  const obs::Json snapshot = reg.to_json();
  const obs::Json* hists = snapshot.find("histograms");
  ASSERT_NE(hists, nullptr);
  const obs::Json* entry = hists->find("t.hist");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->find("count")->as_int(), 102);
  EXPECT_GE(entry->find("p99")->as_int(), entry->find("p50")->as_int());
  reg.reset();
  EXPECT_EQ(reg.histogram("t.hist")->count(), 0);
}

TEST_F(ObsTest, ConvenienceHelpersAreGatedOnEnabled) {
  obs::count("gated", 5);
  EXPECT_EQ(obs::registry().counter("gated")->value(), 0);
  obs::set_enabled(true);
  obs::count("gated", 5);
  EXPECT_EQ(obs::registry().counter("gated")->value(), 5);
  { auto t = obs::timed("gated.timer"); }
  EXPECT_EQ(obs::registry().timer("gated.timer")->count(), 1);
  obs::set_enabled(false);
  { auto t = obs::timed("gated.timer"); }
  EXPECT_EQ(obs::registry().timer("gated.timer")->count(), 1);
}

TEST_F(ObsTest, RegistryJsonExportSortsKeysAndRoundTrips) {
  obs::Registry& reg = obs::registry();
  reg.counter("z.last")->add(1);
  reg.counter("a.first")->add(2);
  reg.timer("mid")->record_ns(5);
  obs::Json out = reg.to_json();
  const auto& counters = out.at("counters").items();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].first, "a.first");  // std::map order, not insertion
  EXPECT_EQ(counters[1].first, "z.last");
  EXPECT_EQ(out.at("timers").at("mid").at("count").as_int(), 1);
  EXPECT_EQ(obs::Json::parse(out.dump()).dump(), out.dump());

  reg.reset();
  EXPECT_EQ(reg.to_json().at("counters").size(), 0u);
}

// ---- tracer ----------------------------------------------------------------
//
// The four tracer tests skip under -DHLSHC_TRACE=OFF, where the tracer is
// compiled down to inert stubs — exactly the behaviour the build option
// promises, but nothing to round-trip.

#define SKIP_IF_TRACER_COMPILED_OUT()                              \
  do {                                                             \
    if (!obs::kTraceCompiled)                                      \
      GTEST_SKIP() << "tracer compiled out (HLSHC_TRACE=OFF)";     \
  } while (0)

TEST_F(ObsTest, SpansRecordOnlyWhileActive) {
  SKIP_IF_TRACER_COMPILED_OUT();
  { obs::Span s("ignored", "test"); }
  EXPECT_EQ(obs::tracer().event_count(), 0u);

  obs::tracer().start();
  {
    obs::Span s("phase", "test");
    s.arg("key", "value").arg("n", int64_t{7});
  }
  obs::tracer().instant("tick", "test");
  obs::tracer().stop();
  { obs::Span s("after-stop", "test"); }
  ASSERT_EQ(obs::tracer().event_count(), 2u);

  obs::Json doc = obs::tracer().to_json();
  const obs::Json& events = doc.at("traceEvents");
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].at("name").as_string(), "phase");
  EXPECT_EQ(events[0].at("ph").as_string(), "X");
  EXPECT_EQ(events[0].at("args").at("key").as_string(), "value");
  EXPECT_EQ(events[0].at("args").at("n").as_string(), "7");
  EXPECT_GE(events[0].at("dur").as_int(), 0);
  EXPECT_EQ(events[1].at("ph").as_string(), "i");
}

TEST_F(ObsTest, SpanEndClosesEarlyAndIsIdempotent) {
  SKIP_IF_TRACER_COMPILED_OUT();
  obs::tracer().start();
  obs::Span s("early", "test");
  s.end();
  s.end();  // second end is a no-op
  s.arg("late", "ignored after end");
  EXPECT_EQ(obs::tracer().event_count(), 1u);
  obs::Json doc = obs::tracer().to_json();
  EXPECT_EQ(doc.at("traceEvents")[0].find("args"), nullptr);
}

TEST_F(ObsTest, EndToEndTestbenchTraceIsWellFormedChromeJson) {
  SKIP_IF_TRACER_COMPILED_OUT();
  obs::tracer().start();
  hlshc::netlist::Design d = hlshc::rtl::build_verilog_opt2();
  auto engine = hlshc::sim::make_engine(d);
  hlshc::axis::StreamTestbench tb(*engine);
  tb.run(input_blocks(2), 100000);
  obs::tracer().stop();

  // Round-trip through the parser: the acceptance-criteria check that the
  // emitted trace is real JSON, not JSON-shaped text.
  obs::Json doc = obs::Json::parse(obs::tracer().to_json().dump(2));
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  const obs::Json& events = doc.at("traceEvents");
  ASSERT_GT(events.size(), 0u);
  bool saw_testbench = false, saw_plan = false;
  for (size_t i = 0; i < events.size(); ++i) {
    const obs::Json& e = events[i];
    // Chrome requires these fields on every event.
    EXPECT_FALSE(e.at("name").as_string().empty());
    EXPECT_FALSE(e.at("ph").as_string().empty());
    EXPECT_GE(e.at("ts").as_int(), 0);
    e.at("pid").as_int();
    e.at("tid").as_int();
    if (e.at("name").as_string() == "testbench.run") saw_testbench = true;
    if (e.at("name").as_string() == "plan.compile") saw_plan = true;
  }
  EXPECT_TRUE(saw_testbench);
  EXPECT_TRUE(saw_plan);
}

TEST_F(ObsTest, TracerWriteFileParsesBack) {
  SKIP_IF_TRACER_COMPILED_OUT();
  obs::tracer().start();
  { obs::Span s("io", "test"); }
  obs::tracer().stop();
  std::string path = ::testing::TempDir() + "obs_trace_test.json";
  obs::tracer().write_file(path);
  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  obs::Json doc = obs::Json::parse(text);
  EXPECT_EQ(doc.at("traceEvents").size(), 1u);
}

// ---- metrics from instrumented subsystems ---------------------------------

TEST_F(ObsTest, TestbenchRunPublishesAxisAndSimMetrics) {
  obs::set_enabled(true);
  hlshc::netlist::Design d = hlshc::rtl::build_verilog_opt2();
  auto engine = hlshc::sim::make_engine(d);
  hlshc::axis::StreamTestbench tb(*engine);
  tb.run(input_blocks(2), 100000);
  obs::Registry& reg = obs::registry();
  // 2 matrices x 8 beats on each side; a clean run has no violations.
  EXPECT_EQ(reg.counter("axis.s.beats")->value(), 16);
  EXPECT_EQ(reg.counter("axis.m.beats")->value(), 16);
  EXPECT_EQ(reg.counter("axis.s.violations")->value(), 0);
  EXPECT_GT(reg.timer("sim.eval")->count(), 0);
  EXPECT_GT(reg.timer("sim.commit")->count(), 0);
}

// ---- RunReport -------------------------------------------------------------

TEST_F(ObsTest, RunReportEnvelopeHasStableKeyOrder) {
  obs::RunReport report("unit_test_tool");
  report.params().set("cycles", obs::Json::number(100));
  report.results().set("speedup", obs::Json::number(3.5));
  obs::Json j = report.to_json();
  const auto& items = j.items();
  ASSERT_EQ(items.size(), 5u);
  EXPECT_EQ(items[0].first, "schema");
  EXPECT_EQ(items[1].first, "schema_version");
  EXPECT_EQ(items[2].first, "tool");
  EXPECT_EQ(items[3].first, "params");
  EXPECT_EQ(items[4].first, "results");
  EXPECT_EQ(j.at("schema").as_string(), "hlshc.run_report");
  EXPECT_EQ(j.at("schema_version").as_int(), obs::RunReport::kSchemaVersion);
  EXPECT_EQ(j.at("tool").as_string(), "unit_test_tool");
  // Two reports built the same way serialize identically.
  obs::RunReport again("unit_test_tool");
  again.params().set("cycles", obs::Json::number(100));
  again.results().set("speedup", obs::Json::number(3.5));
  EXPECT_EQ(again.to_json().dump(2), j.dump(2));
}

TEST_F(ObsTest, RunReportCapturesMetricsAndWritesFile) {
  obs::set_enabled(true);
  obs::count("report.test", 3);
  obs::RunReport report("unit_test_tool");
  report.capture_metrics();
  obs::Json j = report.to_json();
  EXPECT_EQ(
      j.at("metrics").at("counters").at("report.test").as_int(), 3);

  std::string path = ::testing::TempDir() + "obs_report_test.json";
  report.write_file(path);
  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_EQ(obs::Json::parse(text).at("tool").as_string(), "unit_test_tool");
}

// ---- Histogram percentile edge cases ---------------------------------------

TEST_F(ObsTest, HistogramPercentileEdgeCases) {
  obs::Histogram* h = obs::registry().histogram("t.edges");
  // Empty histogram: every quantile (including out-of-range p) is 0.
  EXPECT_EQ(h->percentile(0.0), 0);
  EXPECT_EQ(h->percentile(1.0), 0);
  EXPECT_EQ(h->percentile(-3.0), 0);
  EXPECT_EQ(h->percentile(7.0), 0);

  for (int i = 0; i < 10; ++i) h->record(1000);
  h->record(1u << 20);  // one large sample defines the max

  // p clamps into [0, 1]: below-range behaves like p=0, above-range (and
  // NaN) like safe extremes — never UB, never a throw.
  EXPECT_EQ(h->percentile(-0.5), h->percentile(0.0));
  EXPECT_EQ(h->percentile(1.5), h->percentile(1.0));
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(h->percentile(nan), h->percentile(0.0));

  // p=1 lands in the top occupied bucket, whose conservative upper bound
  // covers (is >=) the true maximum.
  EXPECT_GE(h->percentile(1.0), static_cast<int64_t>(1u << 20));
  EXPECT_LT(h->percentile(1.0), static_cast<int64_t>(1u << 22));
  EXPECT_GE(h->percentile(0.0), 1000);
  EXPECT_LE(h->percentile(0.5), h->percentile(0.99));
}

// ---- labeled metric names --------------------------------------------------

TEST_F(ObsTest, LabeledMetricNames) {
  EXPECT_EQ(obs::labeled("svc.requests", "method", "compile"),
            "svc.requests{method=compile}");
  EXPECT_EQ(obs::labeled("svc.outcome", "code", "ok", "method", "evaluate"),
            "svc.outcome{code=ok,method=evaluate}");

  // Labeled series live in the same registry and export next to their
  // unlabeled parent.
  obs::set_enabled(true);
  obs::count("t.req");
  obs::count(obs::labeled("t.req", "method", "compile"), 2);
  const obs::Json j = obs::registry().to_json();
  EXPECT_EQ(j.at("counters").at("t.req").as_int(), 1);
  EXPECT_EQ(j.at("counters").at("t.req{method=compile}").as_int(), 2);
}

// ---- TraceContext ----------------------------------------------------------

TEST_F(ObsTest, TraceContextMintAndChild) {
  const obs::TraceContext a = obs::new_trace();
  const obs::TraceContext b = obs::new_trace();
  EXPECT_TRUE(a.valid());
  EXPECT_NE(a.trace_id, b.trace_id);
  EXPECT_EQ(a.span_id, 0u);  // trace open, no span yet

  const obs::TraceContext child = obs::child_of(a);
  EXPECT_EQ(child.trace_id, a.trace_id);
  EXPECT_NE(child.span_id, 0u);
  EXPECT_EQ(child.parent_span_id, a.span_id);

  const std::string hex = obs::trace_id_hex(a.trace_id);
  EXPECT_EQ(hex.size(), 16u);
  EXPECT_EQ(obs::parse_trace_id(hex), a.trace_id);
  EXPECT_EQ(obs::parse_trace_id("zzz"), 0u);
  EXPECT_EQ(obs::parse_trace_id(""), 0u);
  EXPECT_EQ(obs::parse_trace_id("00112233445566778"), 0u);  // 17 chars
}

TEST_F(ObsTest, TraceScopeInstallsAndRestores) {
  EXPECT_FALSE(obs::current_trace().valid());
  const obs::TraceContext outer = obs::new_trace();
  {
    obs::TraceScope scope(outer);
    EXPECT_EQ(obs::current_trace().trace_id, outer.trace_id);
    {
      obs::TraceScope inner(obs::new_trace());
      EXPECT_NE(obs::current_trace().trace_id, outer.trace_id);
    }
    EXPECT_EQ(obs::current_trace().trace_id, outer.trace_id);
  }
  EXPECT_FALSE(obs::current_trace().valid());
}

TEST_F(ObsTest, SpansInheritAndExtendTheCurrentContext) {
  SKIP_IF_TRACER_COMPILED_OUT();
  obs::tracer().start();
  const obs::TraceContext root = obs::new_trace();
  {
    obs::TraceScope scope(root);
    obs::Span parent("t.parent", "test");
    const obs::TraceContext at_parent = obs::current_trace();
    EXPECT_EQ(at_parent.trace_id, root.trace_id);
    EXPECT_NE(at_parent.span_id, 0u);
    {
      obs::Span child("t.child", "test");
      EXPECT_EQ(obs::current_trace().parent_span_id, at_parent.span_id);
    }
    // child ended: the parent's context is current again.
    EXPECT_EQ(obs::current_trace().span_id, at_parent.span_id);
  }
  obs::tracer().stop();

  // The exported spans carry the correlation ids in args.
  const obs::Json j = obs::tracer().to_json();
  const obs::Json& events = j.at("traceEvents");
  const std::string want = obs::trace_id_hex(root.trace_id);
  int correlated = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    const obs::Json* args = events[i].find("args");
    if (args && args->find("trace_id") &&
        args->find("trace_id")->as_string() == want)
      ++correlated;
  }
  EXPECT_EQ(correlated, 2);
}

// ---- EventLog --------------------------------------------------------------

TEST_F(ObsTest, EventLogRingBoundsAndDrops) {
  obs::EventLog log(4);
  EXPECT_EQ(log.capacity(), 4u);
  for (int i = 0; i < 6; ++i)
    log.emit(obs::EventLevel::kInfo, "e" + std::to_string(i));
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.total(), 6);
  EXPECT_EQ(log.dropped(), 2);

  // Oldest-first snapshot of the survivors: e2..e5.
  const std::vector<obs::Event> all = log.snapshot();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all.front().name, "e2");
  EXPECT_EQ(all.back().name, "e5");
  EXPECT_GT(all.front().ts_ns, 0);  // stamped at emit
  EXPECT_NE(all.front().tid, 0);

  const std::vector<obs::Event> last2 = log.snapshot(2);
  ASSERT_EQ(last2.size(), 2u);
  EXPECT_EQ(last2.front().name, "e4");

  log.clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.total(), 6);  // totals survive clear
}

TEST_F(ObsTest, EventLogStampsAndFiltersByTrace) {
  obs::EventLog log(16);
  const obs::TraceContext a = obs::new_trace();
  const obs::TraceContext b = obs::new_trace();
  {
    obs::TraceScope scope(a);
    log.emit(obs::EventLevel::kInfo, "in_a", {{"k", "v"}});
  }
  {
    obs::TraceScope scope(b);
    log.emit(obs::EventLevel::kWarn, "in_b");
  }
  log.emit(obs::EventLevel::kDebug, "no_trace");

  const std::vector<obs::Event> of_a = log.for_trace(a.trace_id);
  ASSERT_EQ(of_a.size(), 1u);
  EXPECT_EQ(of_a[0].name, "in_a");
  EXPECT_EQ(of_a[0].trace_id, a.trace_id);
  EXPECT_EQ(log.for_trace(b.trace_id).size(), 1u);
  EXPECT_TRUE(log.for_trace(0x12345).empty());
}

TEST_F(ObsTest, EventLogJsonAndSinkParseBack) {
  obs::EventLog log(16);
  const std::string path = ::testing::TempDir() + "obs_event_log_test.jsonl";
  log.open_sink(path);
  EXPECT_TRUE(log.sink_open());

  const obs::TraceContext trace = obs::new_trace();
  {
    obs::TraceScope scope(trace);
    log.emit(obs::EventLevel::kInfo, "svc.request",
             {{"method", "compile"}, {"outcome", "ok"}});
  }
  log.emit(obs::EventLevel::kError, "bare");
  log.close_sink();
  EXPECT_FALSE(log.sink_open());

  // event_json: envelope fields plus flattened kv; ids only when traced.
  const std::vector<obs::Event> events = log.snapshot();
  ASSERT_EQ(events.size(), 2u);
  const obs::Json traced = obs::EventLog::event_json(events[0]);
  EXPECT_EQ(traced.at("level").as_string(), "info");
  EXPECT_EQ(traced.at("name").as_string(), "svc.request");
  EXPECT_EQ(traced.at("method").as_string(), "compile");
  EXPECT_EQ(traced.at("trace_id").as_string(),
            obs::trace_id_hex(trace.trace_id));
  const obs::Json bare = obs::EventLog::event_json(events[1]);
  EXPECT_EQ(bare.find("trace_id"), nullptr);
  EXPECT_EQ(bare.at("level").as_string(), "error");

  // The sink wrote one parseable JSON object per line.
  std::ifstream in(path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const obs::Json parsed = obs::Json::parse(line);
    EXPECT_NE(parsed.find("ts_ns"), nullptr);
    EXPECT_NE(parsed.find("name"), nullptr);
    ++lines;
  }
  EXPECT_EQ(lines, 2);
}

TEST_F(ObsTest, LogEventHelperIsGatedOnEnabled) {
  const int64_t before = obs::event_log().total();
  obs::log_event(obs::EventLevel::kInfo, "gated.off");
  EXPECT_EQ(obs::event_log().total(), before);
  obs::set_enabled(true);
  obs::log_event(obs::EventLevel::kInfo, "gated.on");
  EXPECT_EQ(obs::event_log().total(), before + 1);
  obs::set_enabled(false);
}

}  // namespace
