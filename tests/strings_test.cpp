// Unit tests for string helpers and the deterministic RNGs.
#include "base/rng.hpp"
#include "base/strings.hpp"

#include <gtest/gtest.h>

namespace hlshc {
namespace {

TEST(Strings, Split) {
  auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Strings, SplitLinesHandlesCrLfAndMissingFinalNewline) {
  auto lines = split_lines("one\r\ntwo\nthree");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "one");
  EXPECT_EQ(lines[1], "two");
  EXPECT_EQ(lines[2], "three");
}

TEST(Strings, SplitLinesEmpty) {
  EXPECT_TRUE(split_lines("").empty());
  EXPECT_EQ(split_lines("\n").size(), 1u);
}

TEST(Strings, TrimAndBlank) {
  EXPECT_EQ(trim("  x \t"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_TRUE(is_blank(" \t "));
  EXPECT_FALSE(is_blank(" . "));
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, FormatFixed) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(2.0, 1), "2.0");
}

TEST(Strings, FormatGrouped) {
  EXPECT_EQ(format_grouped(0), "0");
  EXPECT_EQ(format_grouped(999), "999");
  EXPECT_EQ(format_grouped(1182240), "1,182,240");
  EXPECT_EQ(format_grouped(-56780), "-56,780");
}

TEST(Ieee1180Rng, BoundsRespectAsymmetricRange) {
  Ieee1180Rng rng(1);
  for (int i = 0; i < 100000; ++i) {
    long v = rng.next(256, 255);
    EXPECT_GE(v, -255);
    EXPECT_LE(v, 256);
  }
}

TEST(Ieee1180Rng, DeterministicForSeed) {
  Ieee1180Rng a(1), b(1);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(5, 5), b.next(5, 5));
  Ieee1180Rng c(2);
  bool any_diff = false;
  Ieee1180Rng a2(1);
  for (int i = 0; i < 100; ++i)
    if (a2.next(300, 300) != c.next(300, 300)) any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(SplitMix64, RangeHelper) {
  SplitMix64 rng(42);
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.next_in(-2048, 2047);
    EXPECT_GE(v, -2048);
    EXPECT_LE(v, 2047);
  }
}

}  // namespace
}  // namespace hlshc
