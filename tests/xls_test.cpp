// Tests for the XLS family: the pipeliner (stage balancing, register
// insertion, functional preservation), the kernel, and the stage sweep
// shape the paper reports (pipelining raises fmax and FF count; quality
// peaks at a moderate stage count).
#include "xls/designs.hpp"
#include "xls/pipeline.hpp"

#include <gtest/gtest.h>

#include "axis/testbench.hpp"
#include "base/rng.hpp"
#include "idct/chenwang.hpp"
#include "sim/simulator.hpp"
#include "synth/synthesize.hpp"
#include "testutil.hpp"

namespace hlshc::xls {
namespace {

using netlist::Design;
using netlist::NodeId;
using testutil::software_idct;
using testutil::uniform_coeff_block;

Design small_fn() {
  Design d("fn");
  NodeId a = d.input("a", 12);
  NodeId b = d.input("b", 12);
  NodeId m1 = d.mul(a, d.constant(13, idct::kW1), 25);
  NodeId m2 = d.mul(b, d.constant(13, idct::kW3), 25);
  NodeId s = d.add(m1, m2, 26);
  NodeId m3 = d.mul(s, d.constant(9, 181), 35);
  d.output("o", d.ashr(m3, 8, 35));
  return d;
}

int64_t eval_fn(int64_t a, int64_t b) {
  return (a * idct::kW1 + b * idct::kW3) * 181 >> 8;
}

TEST(Pipeline, ZeroStagesIsIdentity) {
  PipelineResult pr = pipeline_function(small_fn(), 0);
  EXPECT_EQ(pr.latency, 0);
  EXPECT_EQ(pr.pipeline_regs, 0);
  sim::Simulator sim(pr.design);
  sim.set_input("a", 100);
  sim.set_input("b", -7);
  sim.eval();
  EXPECT_EQ(sim.output_i64("o"), eval_fn(100, -7));
}

class PipelineStages : public ::testing::TestWithParam<int> {};

TEST_P(PipelineStages, FunctionalAfterLatencyCycles) {
  const int stages = GetParam();
  PipelineResult pr = pipeline_function(small_fn(), stages);
  EXPECT_GE(pr.latency, 1);
  EXPECT_LE(pr.latency, stages);
  sim::Simulator sim(pr.design);
  sim.set_input("a", -2048);
  sim.set_input("b", 2047);
  for (int i = 0; i < pr.latency; ++i) sim.step();
  EXPECT_EQ(sim.output_i64("o"), eval_fn(-2048, 2047)) << stages;
}

TEST_P(PipelineStages, StreamsOneResultPerCycle) {
  const int stages = GetParam();
  PipelineResult pr = pipeline_function(small_fn(), stages);
  sim::Simulator sim(pr.design);
  // Feed a new input each cycle; outputs appear latency cycles later.
  std::vector<int64_t> inputs = {1, -5, 300, 2047, -2047, 0, 77, -1};
  std::vector<int64_t> got;
  for (size_t i = 0; i < inputs.size() + static_cast<size_t>(pr.latency);
       ++i) {
    if (i < inputs.size()) {
      sim.set_input("a", inputs[i]);
      sim.set_input("b", -inputs[i]);
    }
    sim.eval();
    if (i >= static_cast<size_t>(pr.latency))
      got.push_back(sim.output_i64("o"));
    sim.step();
  }
  ASSERT_EQ(got.size(), inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i)
    EXPECT_EQ(got[i], eval_fn(inputs[i], -inputs[i])) << i;
}

INSTANTIATE_TEST_SUITE_P(Sweep, PipelineStages,
                         ::testing::Values(1, 2, 3, 4, 6, 8));

TEST(Pipeline, RejectsStatefulFunctions) {
  Design d("bad");
  NodeId r = d.reg(4, 0, "r");
  d.set_reg_next(r, r);
  d.output("o", r);
  EXPECT_THROW(pipeline_function(d, 2), Error);
}

TEST(Pipeline, MoreStagesRaiseFmaxAndFfs) {
  synth::SynthOptions opts;
  auto comb = synthesize(pipeline_function(build_idct_kernel(), 0).design,
                         opts);
  auto p4 = synthesize(pipeline_function(build_idct_kernel(), 4).design,
                       opts);
  auto p8 = synthesize(pipeline_function(build_idct_kernel(), 8).design,
                       opts);
  EXPECT_GT(p4.fmax_mhz, comb.fmax_mhz);
  EXPECT_GT(p8.fmax_mhz, p4.fmax_mhz);
  EXPECT_GT(p4.n_ff, comb.n_ff);
  EXPECT_GT(p8.n_ff, p4.n_ff);
}

TEST(Kernel, MatchesSoftwareModelCombinationally) {
  Design k = build_idct_kernel();
  sim::Simulator sim(k);
  SplitMix64 rng(5);
  for (int iter = 0; iter < 50; ++iter) {
    idct::Block in = uniform_coeff_block(rng);
    for (int i = 0; i < 64; ++i)
      sim.set_input("x" + std::to_string(i), in[static_cast<size_t>(i)]);
    sim.eval();
    idct::Block want = software_idct(in);
    for (int i = 0; i < 64; ++i)
      EXPECT_EQ(sim.output_i64("y" + std::to_string(i)),
                want[static_cast<size_t>(i)]);
  }
}

struct XlsCase {
  int stages;
  int expected_latency_min, expected_latency_max;
};

class XlsDesigns : public ::testing::TestWithParam<int> {};

TEST_P(XlsDesigns, BitExactThroughStreamInterface) {
  XlsDesign xd = build_xls_design({GetParam()});
  sim::Simulator sim(xd.design);
  axis::StreamTestbench tb(sim);
  SplitMix64 rng(31);
  std::vector<idct::Block> ins;
  for (int i = 0; i < 6; ++i) ins.push_back(uniform_coeff_block(rng));
  auto out = tb.run(ins);
  ASSERT_EQ(out.size(), ins.size());
  for (size_t i = 0; i < ins.size(); ++i)
    EXPECT_EQ(out[i], software_idct(ins[i]))
        << "stages=" << GetParam() << " matrix " << i;
  EXPECT_TRUE(tb.monitor().clean());
}

TEST_P(XlsDesigns, BackpressureSafe) {
  XlsDesign xd = build_xls_design({GetParam()});
  sim::Simulator sim(xd.design);
  axis::StreamTestbench tb(sim);
  tb.sink().set_backpressure(2, 3);
  SplitMix64 rng(32);
  std::vector<idct::Block> ins;
  for (int i = 0; i < 4; ++i) ins.push_back(uniform_coeff_block(rng));
  auto out = tb.run(ins);
  for (size_t i = 0; i < ins.size(); ++i)
    EXPECT_EQ(out[i], software_idct(ins[i])) << "stages=" << GetParam();
  EXPECT_TRUE(tb.monitor().clean());
}

INSTANTIATE_TEST_SUITE_P(Sweep, XlsDesigns, ::testing::Values(0, 1, 3, 8, 12));

TEST(XlsDesigns, CombinationalConfigMatchesVerilogInitialTiming) {
  XlsDesign xd = build_xls_design({0});
  EXPECT_EQ(xd.kernel_latency, 0);
  sim::Simulator sim(xd.design);
  axis::StreamTestbench tb(sim);
  SplitMix64 rng(33);
  std::vector<idct::Block> ins;
  for (int i = 0; i < 6; ++i) ins.push_back(uniform_coeff_block(rng));
  tb.run(ins);
  // Paper Table II, XLS initial: latency 17, periodicity 8.
  EXPECT_EQ(tb.timing().latency_cycles, 17);
  EXPECT_DOUBLE_EQ(tb.timing().periodicity_cycles, 8.0);
}

TEST(XlsDesigns, PipelinedConfigKeepsPeriodicityEight) {
  XlsDesign xd = build_xls_design({8});
  sim::Simulator sim(xd.design);
  axis::StreamTestbench tb(sim);
  SplitMix64 rng(34);
  std::vector<idct::Block> ins;
  for (int i = 0; i < 8; ++i) ins.push_back(uniform_coeff_block(rng));
  tb.run(ins);
  EXPECT_DOUBLE_EQ(tb.timing().periodicity_cycles, 8.0);
  EXPECT_EQ(tb.timing().latency_cycles, 17 + xd.kernel_latency);
}

TEST(XlsDesigns, SweepShapeMatchesPaper) {
  // Paper: pipelining trades area for speed — the optimized XLS design has
  // 221% of optimized-Verilog performance at 578% of its area.
  auto comb = synth::synthesize_normalized(build_xls_design({0}).design);
  auto p8 = synth::synthesize_normalized(build_xls_design({8}).design);
  EXPECT_GT(p8.normal.fmax_mhz, 1.5 * comb.normal.fmax_mhz);
  EXPECT_GT(p8.nodsp.n_ff, 3 * comb.nodsp.n_ff);
}

}  // namespace
}  // namespace hlshc::xls
