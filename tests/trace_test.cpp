// End-to-end trace-context propagation tests: one request (or one bench
// invocation) must yield ONE correlated span tree — across the service
// layer, the compile pipeline, evaluation, and par::Pool workers — and
// turning the correlation machinery loose on a parallel campaign must not
// change the campaign's results.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "fault/campaign.hpp"
#include "fault/model.hpp"
#include "obs/event_log.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rtl/designs.hpp"
#include "sim/engine.hpp"
#include "svc/server.hpp"
#include "workload/workload.hpp"

namespace obs = hlshc::obs;
namespace fault = hlshc::fault;
namespace svc = hlshc::svc;

namespace {

#define SKIP_IF_TRACER_COMPILED_OUT()                          \
  do {                                                         \
    if (!obs::kTraceCompiled)                                  \
      GTEST_SKIP() << "tracer compiled out (HLSHC_TRACE=OFF)"; \
  } while (0)

/// One recorded span, decoded from the tracer's Chrome-JSON export.
struct SpanInfo {
  std::string name;
  std::string trace_id;        // 16-char hex; empty when uncorrelated
  std::string span_id;
  std::string parent_span_id;
};

std::vector<SpanInfo> exported_spans() {
  const obs::Json doc = obs::tracer().to_json();
  const obs::Json& events = doc.at("traceEvents");
  std::vector<SpanInfo> spans;
  for (size_t i = 0; i < events.size(); ++i) {
    const obs::Json& e = events[i];
    SpanInfo s;
    s.name = e.at("name").as_string();
    if (const obs::Json* args = e.find("args")) {
      if (const obs::Json* t = args->find("trace_id")) {
        s.trace_id = t->as_string();
        s.span_id = args->at("span_id").as_string();
        s.parent_span_id = args->at("parent_span_id").as_string();
      }
    }
    spans.push_back(std::move(s));
  }
  return spans;
}

/// Asserts every span carries `want_trace` and that parent links form one
/// connected tree rooted at the installed context (whose span_id is 0).
void expect_connected_tree(const std::vector<SpanInfo>& spans,
                           const std::string& want_trace) {
  ASSERT_FALSE(spans.empty());
  std::vector<std::string> ids;
  for (const SpanInfo& s : spans) {
    EXPECT_EQ(s.trace_id, want_trace) << "span '" << s.name
                                      << "' escaped the request trace";
    ids.push_back(s.span_id);
  }
  const std::string root = obs::trace_id_hex(0);
  for (const SpanInfo& s : spans) {
    const bool at_root = s.parent_span_id == root;
    const bool linked = std::find(ids.begin(), ids.end(), s.parent_span_id) !=
                        ids.end();
    EXPECT_TRUE(at_root || linked)
        << "span '" << s.name << "' has dangling parent " << s.parent_span_id;
  }
}

/// Name multiset of the spans that are deterministic across worker counts.
/// par.chunk spans exist only when a pool actually shards the loop, and the
/// batch sweep spans depend on the execution strategy: jobs=1 streams every
/// site through one refilling testbench.batch_stream sweep, while jobs>1
/// shards lane groups, each a testbench.batch_run.
std::map<std::string, int> deterministic_names(
    const std::vector<SpanInfo>& spans) {
  std::map<std::string, int> names;
  for (const SpanInfo& s : spans)
    if (s.name != "par.chunk" && s.name != "testbench.batch_run" &&
        s.name != "testbench.batch_stream")
      ++names[s.name];
  return names;
}

/// Runs a small seeded campaign under a fresh trace; returns the report and
/// the recorded spans through the out-params.
fault::CampaignReport traced_campaign(const hlshc::netlist::Design& d,
                                      const std::vector<fault::FaultSite>& sites,
                                      int jobs, std::string* trace_hex,
                                      std::vector<SpanInfo>* spans) {
  fault::CampaignOptions opts;
  opts.matrices = 2;
  opts.max_cycles = 20000;
  opts.keep_runs = true;
  opts.jobs = jobs;
  // Small lane groups so 24 sites shard into several pool chunks — the
  // test pins pool adoption, not the default lane policy.
  opts.lanes = 4;

  obs::tracer().start();
  const obs::TraceContext root = obs::new_trace();
  fault::CampaignReport report;
  {
    obs::TraceScope scope(root);
    report = fault::run_campaign(
        d, hlshc::workload::Registry::instance().get("idct"), sites, opts);
  }
  obs::tracer().stop();
  *trace_hex = obs::trace_id_hex(root.trace_id);
  *spans = exported_spans();
  obs::tracer().clear();
  return report;
}

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(false);
    obs::registry().reset();
    obs::tracer().stop();
    obs::tracer().clear();
    obs::event_log().clear();
  }
  void TearDown() override { SetUp(); }
};

// A traced parallel campaign produces the same connected span tree (modulo
// the par.chunk shards and thread ids) and bitwise-identical classification
// results as the serial run — correlation must be an observer, not a
// participant.
TEST_F(TraceTest, CampaignSpanTreeAndResultsAgreeAcrossJobs) {
  SKIP_IF_TRACER_COMPILED_OUT();
  const hlshc::netlist::Design d = hlshc::rtl::build_verilog_opt2();
  // Warm the design's exec-plan cache outside the traced windows, so the
  // one-off plan.compile span does not tilt the serial/parallel comparison.
  hlshc::sim::make_engine(d, hlshc::sim::EngineKind::kCompiled);
  const std::vector<fault::FaultSite> sites =
      fault::sample_seu_sites(d, 24, 60, 2026);

  std::string serial_trace, parallel_trace;
  std::vector<SpanInfo> serial_spans, parallel_spans;
  const fault::CampaignReport serial =
      traced_campaign(d, sites, 1, &serial_trace, &serial_spans);
  const fault::CampaignReport parallel =
      traced_campaign(d, sites, 8, &parallel_trace, &parallel_spans);

  // Results: bitwise identical, site by site.
  EXPECT_EQ(serial.counts.masked, parallel.counts.masked);
  EXPECT_EQ(serial.counts.sdc, parallel.counts.sdc);
  EXPECT_EQ(serial.counts.detected, parallel.counts.detected);
  EXPECT_EQ(serial.counts.hang, parallel.counts.hang);
  ASSERT_EQ(serial.runs.size(), parallel.runs.size());
  for (size_t i = 0; i < serial.runs.size(); ++i)
    EXPECT_EQ(serial.runs[i].outcome, parallel.runs[i].outcome)
        << "site " << i << " classified differently under jobs=8";

  // Spans: every span of each run carries that run's trace id and links
  // into one tree. The deterministic span names match exactly; only the
  // pool's chunk spans and the strategy-dependent batch sweep spans
  // (streaming serially, per lane group under the pool) may differ.
  expect_connected_tree(serial_spans, serial_trace);
  expect_connected_tree(parallel_spans, parallel_trace);
  EXPECT_NE(serial_trace, parallel_trace);
  EXPECT_EQ(deterministic_names(serial_spans),
            deterministic_names(parallel_spans));

  const auto count_named = [](const std::vector<SpanInfo>& spans,
                              const std::string& name) {
    int n = 0;
    for (const SpanInfo& s : spans) n += s.name == name;
    return n;
  };
  // The strategy-dependent sweep spans: one streaming sweep serially, one
  // sweep per lane group under the pool.
  EXPECT_EQ(count_named(serial_spans, "testbench.batch_stream"), 1);
  EXPECT_EQ(count_named(serial_spans, "testbench.batch_run"), 0);
  EXPECT_EQ(count_named(parallel_spans, "testbench.batch_stream"), 0);
  EXPECT_GT(count_named(parallel_spans, "testbench.batch_run"), 0);
  const auto count_chunks = [&](const std::vector<SpanInfo>& spans) {
    return count_named(spans, "par.chunk");
  };
  EXPECT_EQ(count_chunks(serial_spans), 0);
  EXPECT_GT(count_chunks(parallel_spans), 0)
      << "jobs=8 campaign never sharded — pool adoption untested";
  for (const SpanInfo& s : parallel_spans) {
    if (s.name == "par.chunk") {
      EXPECT_EQ(s.trace_id, parallel_trace)
          << "pool worker span escaped the caller's trace";
    }
  }
}

// One service request: admission mints the id, the worker installs it, and
// the whole pipeline — svc.request, tools.compile, every netlist pass,
// evaluation — lands in one span tree whose id the response carries.
TEST_F(TraceTest, ServiceRequestYieldsOneCorrelatedSpanTree) {
  SKIP_IF_TRACER_COMPILED_OUT();
  obs::set_enabled(true);
  svc::Server server;

  obs::tracer().start();
  const std::string response = server.handle(
      R"({"id":1,"method":"evaluate","params":)"
      R"({"design":"verilog_opt2","matrices":1}})");
  obs::tracer().stop();

  const obs::Json parsed = obs::Json::parse(response);
  EXPECT_TRUE(parsed.at("ok").as_bool());
  const std::string trace_hex = parsed.at("trace_id").as_string();
  ASSERT_EQ(trace_hex.size(), 16u);

  std::vector<SpanInfo> spans;
  for (SpanInfo& s : exported_spans())
    if (s.trace_id == trace_hex) spans.push_back(std::move(s));
  expect_connected_tree(spans, trace_hex);

  const std::map<std::string, int> names = deterministic_names(spans);
  EXPECT_EQ(names.count("svc.request"), 1u);
  EXPECT_EQ(names.count("tools.compile"), 1u);
  EXPECT_EQ(names.count("netlist.pipeline"), 1u);
  EXPECT_EQ(names.count("evaluate.design"), 1u);
  bool saw_pass = false;
  for (const auto& [name, n] : names) saw_pass |= name.rfind("pass.", 0) == 0;
  EXPECT_TRUE(saw_pass) << "no netlist pass span joined the request trace";

  // The event log correlates under the same id: the svc.request summary
  // event (and the pipeline's events) are retrievable by trace_id.
  const uint64_t trace_id = obs::parse_trace_id(trace_hex);
  const std::vector<obs::Event> events =
      obs::event_log().for_trace(trace_id);
  ASSERT_FALSE(events.empty());
  bool saw_request_event = false;
  for (const obs::Event& e : events)
    saw_request_event |= e.name == "svc.request";
  EXPECT_TRUE(saw_request_event);
}

// Back-to-back requests get distinct ids, and a handling thread leaves no
// context behind for the next request to inherit.
TEST_F(TraceTest, RequestsGetDistinctTraceIds) {
  svc::Server server;
  const obs::Json a = obs::Json::parse(server.handle(
      R"({"id":1,"method":"compile","params":{"design":"verilog_opt1"}})"));
  const obs::Json b = obs::Json::parse(server.handle(
      R"({"id":2,"method":"compile","params":{"design":"verilog_opt1"}})"));
  EXPECT_TRUE(a.at("ok").as_bool());
  EXPECT_NE(a.at("trace_id").as_string(), b.at("trace_id").as_string());
  EXPECT_FALSE(obs::current_trace().valid());
}

}  // namespace
