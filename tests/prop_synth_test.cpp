// Property-based tests for the synthesis substrate:
//   * range-analysis soundness — every simulated node value must lie inside
//     the interval the analysis computed (the narrowing the cost model
//     relies on must never be wrong);
//   * monotonicity properties of the cost model (more DSP budget never
//     increases LUTs; wider constants never get cheaper CSD trees);
//   * pipeliner properties over the IDCT kernel (latency monotone in the
//     requested stages; fmax non-decreasing).
#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "netlist/ir.hpp"
#include "sim/simulator.hpp"
#include "synth/csd.hpp"
#include "netlist/range.hpp"
#include "synth/synthesize.hpp"
#include "xls/designs.hpp"
#include "xls/pipeline.hpp"

namespace hlshc::synth {
namespace {

using netlist::Design;
using netlist::Node;
using netlist::NodeId;
using netlist::Op;

/// Random combinational design built only from range-tracked operators.
Design random_arith_design(uint64_t seed) {
  SplitMix64 rng(seed);
  Design d("arith_" + std::to_string(seed));
  std::vector<NodeId> pool;
  for (int i = 0; i < 3; ++i)
    pool.push_back(d.input("in" + std::to_string(i),
                           4 + static_cast<int>(rng.next() % 10)));
  pool.push_back(d.constant(13, rng.next_in(-4000, 4000)));
  auto pick = [&]() {
    return pool[static_cast<size_t>(rng.next() % pool.size())];
  };
  for (int i = 0; i < 40; ++i) {
    NodeId a = pick(), b = pick();
    int w = std::min(d.node(a).width + d.node(b).width + 2, 48);
    switch (rng.next() % 6) {
      case 0: pool.push_back(d.add(a, b, w)); break;
      case 1: pool.push_back(d.sub(a, b, w)); break;
      case 2: pool.push_back(d.mul(a, b, std::min(w + 8, 56))); break;
      case 3:
        pool.push_back(d.shl(a, static_cast<int>(rng.next() % 5),
                             std::min(d.node(a).width + 5, 48)));
        break;
      case 4:
        pool.push_back(d.ashr(a, static_cast<int>(rng.next() % 5),
                              d.node(a).width));
        break;
      default:
        pool.push_back(d.mux(d.slt(a, b), d.sext(a, w), d.sext(b, w), w));
        break;
    }
  }
  d.output("o", pool.back());
  return d;
}

class RandomArith : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomArith, RangeAnalysisIsSound) {
  Design d = random_arith_design(GetParam());
  RangeAnalysis ranges(d);
  sim::Simulator sim(d);
  SplitMix64 rng(GetParam() ^ 0xabcdef);
  for (int iter = 0; iter < 30; ++iter) {
    for (NodeId in : d.inputs()) {
      const Node& n = d.node(in);
      int64_t lo = -(int64_t{1} << (n.width - 1));
      int64_t hi = (int64_t{1} << (n.width - 1)) - 1;
      sim.set_input(n.name, rng.next_in(lo, hi));
    }
    sim.eval();
    for (size_t i = 0; i < d.node_count(); ++i) {
      NodeId id = static_cast<NodeId>(i);
      int64_t v = sim.value(id).to_int64();
      const Interval& r = ranges.range(id);
      EXPECT_GE(v, r.lo) << "node " << i << " op "
                         << netlist::op_name(d.node(id).op);
      EXPECT_LE(v, r.hi) << "node " << i << " op "
                         << netlist::op_name(d.node(id).op);
    }
  }
}

TEST_P(RandomArith, EffectiveWidthHoldsTheRange) {
  Design d = random_arith_design(GetParam());
  RangeAnalysis ranges(d);
  for (size_t i = 0; i < d.node_count(); ++i) {
    NodeId id = static_cast<NodeId>(i);
    int w = ranges.effective_width(id);
    EXPECT_GE(w, 1);
    EXPECT_TRUE(ranges.range(id).fits(std::max(w, d.node(id).width)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomArith,
                         ::testing::Range<uint64_t>(100, 120));

// ---- cost model monotonicity ------------------------------------------------

TEST(CostModelProperties, MoreDspBudgetNeverCostsMoreLuts) {
  Design d = random_arith_design(7);
  long prev_luts = -1;
  for (long budget : {0L, 2L, 8L, 32L, -1L}) {
    SynthOptions o;
    o.maxdsp = budget;
    long luts = synthesize(d, o).n_lut;
    if (prev_luts >= 0 && budget != -1) EXPECT_LE(luts, prev_luts);
    if (budget != -1) prev_luts = luts;
  }
}

TEST(CostModelProperties, CsdDigitsGrowWithOddConstantsNotMagnitude) {
  // A power of two costs nothing however large; a dense constant costs.
  EXPECT_EQ(csd_adder_count(1 << 20), 0);
  EXPECT_GT(csd_adder_count(0x55555), 5);
  // CSD count is invariant under shifts of the constant.
  for (int64_t base : {181, 565, 2841}) {
    int digits = csd_nonzero_digits(base);
    for (int sh = 1; sh < 8; ++sh)
      EXPECT_EQ(csd_nonzero_digits(base << sh), digits) << base << sh;
  }
}

// ---- pipeliner properties ----------------------------------------------------

class PipelinerSweep : public ::testing::TestWithParam<int> {};

TEST_P(PipelinerSweep, LatencyBoundedByRequest) {
  auto pr = xls::pipeline_function(xls::build_idct_kernel(), GetParam());
  EXPECT_GE(pr.latency, 1);
  EXPECT_LE(pr.latency, GetParam());
  EXPECT_EQ(pr.latency + pr.merged_stages, GetParam());
}

TEST_P(PipelinerSweep, FmaxNeverBelowCombinational) {
  static const double comb_fmax =
      synthesize(xls::build_idct_kernel()).fmax_mhz;
  auto pr = xls::pipeline_function(xls::build_idct_kernel(), GetParam());
  EXPECT_GE(synthesize(pr.design).fmax_mhz, comb_fmax * 0.99);
}

INSTANTIATE_TEST_SUITE_P(Stages, PipelinerSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 12, 16));

}  // namespace
}  // namespace hlshc::synth
