// Tests for the MaxJ family: DSL auto-pipelining/balancing semantics, both
// kernels' bit-exactness under tick-accurate simulation, and the PCIe
// system model's bound selection (initial kernel PCIe-limited, row kernel
// frequency-limited, as in the paper).
#include "maxj/dsl.hpp"
#include "maxj/kernels.hpp"
#include "maxj/system.hpp"

#include <gtest/gtest.h>

#include <deque>

#include "base/rng.hpp"
#include "idct/chenwang.hpp"
#include "sim/simulator.hpp"
#include "testutil.hpp"

namespace hlshc::maxj {
namespace {

using testutil::software_idct;
using testutil::uniform_coeff_block;

// ---- DSL -----------------------------------------------------------------

TEST(MaxjDsl, ArithmeticAddsOnePipelineStage) {
  KernelBuilder k("t");
  DFEVar a = k.input("a", 12);
  DFEVar b = k.input("b", 12);
  DFEVar s = k.add(a, b);
  EXPECT_EQ(s.depth, 1);
  DFEVar m = k.mulc(s, 181);
  EXPECT_EQ(m.depth, 2);
  DFEVar sh = k.ashr(m, 8);
  EXPECT_EQ(sh.depth, 2);  // wiring is free
}

TEST(MaxjDsl, BalancingAlignsMismatchedDepths) {
  KernelBuilder k("t");
  DFEVar a = k.input("a", 12);
  DFEVar deep = k.add(k.add(a, a), k.constant(1));  // depth 2
  DFEVar shallow = k.input("b", 12);                // depth 0
  DFEVar s = k.add(deep, shallow);
  EXPECT_EQ(s.depth, 3);
  EXPECT_GT(k.balancing_regs(), 0);
}

TEST(MaxjDsl, PipelinedExpressionComputesCorrectly) {
  KernelBuilder k("t");
  DFEVar a = k.input("a", 12);
  DFEVar b = k.input("b", 12);
  // (a + b) * 181 - (a << 2)
  DFEVar e = k.sub(k.mulc(k.add(a, b), 181), k.shl(a, 2));
  k.output("o", e);
  int depth = k.max_depth();
  netlist::Design d = k.finish();
  sim::Simulator sim(d);
  sim.set_input("a", 100);
  sim.set_input("b", -41);
  for (int i = 0; i < depth; ++i) sim.step();
  EXPECT_EQ(sim.output_i64("o"), (100 - 41) * 181 - 400);
}

TEST(MaxjDsl, OffsetDelaysStream) {
  KernelBuilder k("t");
  DFEVar a = k.input("a", 8);
  DFEVar d3 = k.offset(a, 3);
  EXPECT_EQ(d3.depth, 3);
  k.output("o", d3);
  netlist::Design d = k.finish();
  sim::Simulator sim(d);
  for (int t = 0; t < 10; ++t) {
    sim.set_input("a", t);
    sim.eval();
    if (t >= 3) EXPECT_EQ(sim.output_i64("o"), t - 3);
    sim.step();
  }
}

TEST(MaxjDsl, CounterWraps) {
  KernelBuilder k("t");
  DFEVar p = k.counter(9, "p");
  k.output_raw("p", p);
  netlist::Design d = k.finish();
  sim::Simulator sim(d);
  for (int t = 0; t < 30; ++t) {
    sim.eval();
    EXPECT_EQ(sim.output_i64("p"), t % 9);
    sim.step();
  }
}

// ---- matrix kernel -----------------------------------------------------------

TEST(MatrixKernel, StreamsOneMatrixPerTick) {
  Kernel kern = build_matrix_kernel();
  EXPECT_EQ(kern.ticks_per_op, 1);
  EXPECT_GE(kern.depth, 15);  // deeply auto-pipelined

  sim::Simulator sim(kern.design);
  SplitMix64 rng(8);
  std::vector<idct::Block> ins;
  for (int i = 0; i < 5; ++i) ins.push_back(uniform_coeff_block(rng));

  std::vector<idct::Block> outs;
  int ticks = static_cast<int>(ins.size()) + kern.depth + 2;
  for (int t = 0; t < ticks; ++t) {
    bool feeding = t < static_cast<int>(ins.size());
    sim.set_input("ivalid", feeding ? 1 : 0);
    if (feeding)
      for (int i = 0; i < 64; ++i)
        sim.set_input("x" + std::to_string(i),
                      ins[static_cast<size_t>(t)][static_cast<size_t>(i)]);
    sim.eval();
    if (sim.output_i64("ovalid")) {
      idct::Block b{};
      for (int i = 0; i < 64; ++i)
        b[static_cast<size_t>(i)] = static_cast<int32_t>(
            sim.output_i64("y" + std::to_string(i)));
      outs.push_back(b);
    }
    sim.step();
  }
  ASSERT_EQ(outs.size(), ins.size());
  for (size_t i = 0; i < ins.size(); ++i)
    EXPECT_EQ(outs[i], software_idct(ins[i])) << "matrix " << i;
}

// ---- row kernel ----------------------------------------------------------------

TEST(RowKernel, EightRowsPerNineTicks) {
  Kernel kern = build_row_kernel();
  EXPECT_EQ(kern.ticks_per_op, 9);

  sim::Simulator sim(kern.design);
  SplitMix64 rng(9);
  std::vector<idct::Block> ins;
  for (int i = 0; i < 4; ++i) ins.push_back(uniform_coeff_block(rng));

  std::deque<std::array<int32_t, 8>> row_queue;
  for (const auto& b : ins)
    for (int r = 0; r < 8; ++r) {
      std::array<int32_t, 8> row;
      for (int c = 0; c < 8; ++c) row[static_cast<size_t>(c)] = idct::at(b, r, c);
      row_queue.push_back(row);
    }

  // Collect output columns; 8 columns per matrix in order.
  std::vector<std::array<int32_t, 8>> cols;
  int ticks = static_cast<int>(ins.size()) * 9 + kern.depth + 20;
  for (int t = 0; t < ticks; ++t) {
    sim.eval();
    bool iready = sim.output_i64("iready") != 0;
    if (iready && !row_queue.empty()) {
      const auto& row = row_queue.front();
      for (int c = 0; c < 8; ++c)
        sim.set_input("in" + std::to_string(c), row[static_cast<size_t>(c)]);
      sim.set_input("ivalid", 1);
      row_queue.pop_front();
    } else {
      sim.set_input("ivalid", 0);
    }
    sim.eval();
    if (sim.output_i64("ovalid")) {
      std::array<int32_t, 8> col;
      for (int r = 0; r < 8; ++r)
        col[static_cast<size_t>(r)] = static_cast<int32_t>(
            sim.output_i64("o" + std::to_string(r)));
      cols.push_back(col);
    }
    sim.step();
  }
  ASSERT_EQ(cols.size(), ins.size() * 8);
  for (size_t m = 0; m < ins.size(); ++m) {
    idct::Block want = software_idct(ins[m]);
    for (int c = 0; c < 8; ++c)
      for (int r = 0; r < 8; ++r)
        EXPECT_EQ(cols[m * 8 + static_cast<size_t>(c)]
                      [static_cast<size_t>(r)],
                  idct::at(want, r, c))
            << "matrix " << m << " col " << c << " row " << r;
  }
}

// ---- system model -----------------------------------------------------------------

/// Tests synthesize the kernel directly (the production path goes through
/// tools::compile_synth_normalized; see scripts/check_pipeline_guard.sh).
SystemEvaluation eval_kernel(const Kernel& k) {
  return evaluate_system(k, synth::synthesize_normalized(k.design));
}

TEST(System, MatrixKernelIsPcieBound) {
  SystemEvaluation ev = eval_kernel(build_matrix_kernel());
  // Paper: throughput equals PCIe 3.0 x16 bandwidth / 1024-bit matrices,
  // about 125 Mops/s, with the kernel clock well above that.
  EXPECT_TRUE(ev.pcie_limited);
  EXPECT_NEAR(ev.pcie_bound_ops, 125e6, 1e6);
  EXPECT_GT(ev.kernel_bound_ops, ev.pcie_bound_ops);
  EXPECT_DOUBLE_EQ(ev.throughput_ops, ev.pcie_bound_ops);
}

TEST(System, RowKernelIsFrequencyBound) {
  SystemEvaluation ev = eval_kernel(build_row_kernel());
  EXPECT_FALSE(ev.pcie_limited);
  EXPECT_DOUBLE_EQ(ev.throughput_ops, ev.kernel_bound_ops);
  // Periodicity 9: kernel bound = f / 9.
  EXPECT_NEAR(ev.kernel_bound_ops * 9.0, ev.kernel_tick_rate_hz, 1.0);
}

TEST(System, RowKernelTradesThroughputForArea) {
  // Paper: the row kernel occupies ~2.8x less area at ~2.7x less
  // throughput, leaving quality slightly better.
  SystemEvaluation init = eval_kernel(build_matrix_kernel());
  SystemEvaluation opt = eval_kernel(build_row_kernel());
  double area_ratio = static_cast<double>(init.synth.area()) /
                      static_cast<double>(opt.synth.area());
  double perf_ratio = init.throughput_ops / opt.throughput_ops;
  EXPECT_GT(area_ratio, 1.8);
  EXPECT_GT(perf_ratio, 1.8);
  EXPECT_LT(area_ratio, 6.5);
  EXPECT_LT(perf_ratio, 6.5);
}

TEST(System, KernelsHaveHighestClockOfTheStudy) {
  // The paper's MaxJ kernels run at 403 MHz — far above every AXI design.
  SystemEvaluation ev = eval_kernel(build_matrix_kernel());
  EXPECT_GT(ev.synth.normal.fmax_mhz, 200.0);
}

}  // namespace
}  // namespace hlshc::maxj
