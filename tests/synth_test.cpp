// Unit tests for the synthesis substrate: CSD recoding, cost model,
// static timing and the normalized-area flow.
#include "synth/csd.hpp"
#include "synth/synthesize.hpp"

#include <gtest/gtest.h>

#include "idct/chenwang.hpp"

namespace hlshc::synth {
namespace {

using netlist::Design;
using netlist::NodeId;

TEST(Csd, DecomposeMatchesValue) {
  for (int64_t v : {1, 2, 3, 7, 15, 181, 565, 1108, 1609, 2408, 2676, 2841,
                    -7, -2841, 0}) {
    int64_t sum = 0;
    for (const CsdDigit& dgt : csd_decompose(v))
      sum += dgt.sign * (int64_t{1} << dgt.shift);
    EXPECT_EQ(sum, v) << "CSD of " << v;
  }
}

TEST(Csd, NoTwoAdjacentNonzeroDigits) {
  for (int64_t v = 1; v < 4096; ++v) {
    auto digits = csd_decompose(v);
    for (size_t i = 1; i < digits.size(); ++i)
      EXPECT_GT(digits[i].shift, digits[i - 1].shift + 1)
          << "adjacent CSD digits for " << v;
  }
}

TEST(Csd, RecodingNeverWorseThanBinary) {
  for (int64_t v = 1; v < 8192; ++v)
    EXPECT_LE(csd_nonzero_digits(v), binary_nonzero_digits(v)) << v;
}

TEST(Csd, KnownCounts) {
  EXPECT_EQ(csd_nonzero_digits(0), 0);
  EXPECT_EQ(csd_nonzero_digits(1), 1);
  EXPECT_EQ(csd_nonzero_digits(1024), 1);
  EXPECT_EQ(csd_nonzero_digits(7), 2);    // 8 - 1
  EXPECT_EQ(csd_nonzero_digits(15), 2);   // 16 - 1
  EXPECT_EQ(csd_adder_count(1024), 0);    // power of two: pure wiring
  EXPECT_EQ(csd_adder_depth(1024), 0);
  EXPECT_EQ(csd_adder_count(7), 1);
  // The IDCT constants stay cheap in CSD form.
  for (int w : {idct::kW1, idct::kW2, idct::kW3, idct::kW5, idct::kW6,
                idct::kW7, 181}) {
    EXPECT_LE(csd_nonzero_digits(w), 6) << w;
    EXPECT_GE(csd_nonzero_digits(w), 2) << w;
  }
}

Design make_mac_design() {
  Design d("mac");
  NodeId a = d.input("a", 12);
  NodeId k = d.constant(13, idct::kW1);
  NodeId m = d.mul(a, k, 25);
  NodeId acc = d.reg(32, 0, "acc");
  d.set_reg_next(acc, d.add(acc, d.sext(m, 32), 32));
  d.output("acc", acc);
  return d;
}

TEST(CostModel, DspBudgetSwitchesMultiplierImplementation) {
  Design d = make_mac_design();
  SynthOptions with_dsp;   // unlimited
  SynthOptions no_dsp;
  no_dsp.maxdsp = 0;
  SynthReport r1 = synthesize(d, with_dsp);
  SynthReport r0 = synthesize(d, no_dsp);
  EXPECT_GT(r1.n_dsp, 0);
  EXPECT_EQ(r0.n_dsp, 0);
  EXPECT_GT(r0.n_lut, r1.n_lut);  // shift-add tree costs fabric
}

TEST(CostModel, DspTiles) {
  EXPECT_EQ(CostModel::dsp_tiles(12, 13), 1);
  EXPECT_EQ(CostModel::dsp_tiles(27, 18), 1);  // native size
  EXPECT_EQ(CostModel::dsp_tiles(28, 18), 2);
  EXPECT_EQ(CostModel::dsp_tiles(28, 19), 4);
  EXPECT_EQ(CostModel::dsp_tiles(32, 32), 4);
}

TEST(CostModel, PowerOfTwoConstMulIsFree) {
  Design d("p2");
  NodeId a = d.input("a", 12);
  d.output("o", d.mul(a, d.constant(12, 1024), 24));
  SynthOptions nodsp;
  nodsp.maxdsp = 0;
  SynthReport r = synthesize(d, nodsp);
  EXPECT_EQ(r.n_lut, 0);
  EXPECT_EQ(r.n_dsp, 0);
}

TEST(CostModel, RegistersCountAsFlipFlops) {
  Design d("r");
  NodeId in = d.input("in", 20);
  NodeId r = d.reg(20, 0, "r");
  d.set_reg_next(r, in);
  d.output("o", r);
  SynthReport rep = synthesize(d);
  EXPECT_EQ(rep.n_ff, 20);
}

TEST(Timing, DeeperLogicLowersFmax) {
  Design d1("shallow");
  {
    NodeId a = d1.input("a", 16);
    NodeId r = d1.reg(17, 0, "r");
    d1.set_reg_next(r, d1.add(a, a, 17));
    d1.output("o", r);
  }
  Design d2("deep");
  {
    NodeId a = d2.input("a", 16);
    NodeId x = d2.add(a, a, 17);
    for (int i = 0; i < 6; ++i) x = d2.add(x, a, 17);
    NodeId r = d2.reg(17, 0, "r");
    d2.set_reg_next(r, x);
    d2.output("o", r);
  }
  SynthReport r1 = synthesize(d1);
  SynthReport r2 = synthesize(d2);
  EXPECT_GT(r1.fmax_mhz, r2.fmax_mhz);
  EXPECT_GT(r2.critical_path_ns, r1.critical_path_ns);
}

TEST(Timing, PipeliningRaisesFmax) {
  auto chain = [](bool pipelined) {
    Design d(pipelined ? "pipe" : "flat");
    NodeId a = d.input("a", 16);
    NodeId k = d.constant(13, idct::kW3);
    NodeId x = d.mul(a, k, 30);
    if (pipelined) {
      NodeId r = d.reg(30, 0, "s1");
      d.set_reg_next(r, x);
      x = r;
    }
    NodeId y = d.mul(x, d.constant(13, idct::kW5), 43);
    NodeId r2 = d.reg(43, 0, "s2");
    d.set_reg_next(r2, y);
    d.output("o", r2);
    return d;
  };
  SynthOptions nodsp;
  nodsp.maxdsp = 0;
  SynthReport flat = synthesize(chain(false), nodsp);
  SynthReport pipe = synthesize(chain(true), nodsp);
  EXPECT_GT(pipe.fmax_mhz, flat.fmax_mhz);
  EXPECT_GT(pipe.n_ff, flat.n_ff);
}

TEST(Synthesize, NormalizedAreaUsesNoDspMapping) {
  Design d = make_mac_design();
  NormalizedSynth ns = synthesize_normalized(d);
  EXPECT_GT(ns.normal.n_dsp, 0);
  EXPECT_EQ(ns.nodsp.n_dsp, 0);
  EXPECT_EQ(ns.area(), ns.nodsp.n_lut + ns.nodsp.n_ff);
  EXPECT_GT(ns.area(), 0);
}

TEST(Synthesize, IoBitCountReported) {
  Design d("io");
  NodeId a = d.input("a", 12);
  d.output("o", d.add(a, a, 13));
  SynthReport r = synthesize(d);
  EXPECT_EQ(r.n_io, 25);
}

TEST(Synthesize, DeadLogicDoesNotCost) {
  Design d("dead");
  NodeId a = d.input("a", 16);
  d.mul(a, a, 32);  // dead multiplier
  d.output("o", d.add(a, a, 17));
  SynthReport r = synthesize(d);
  SynthOptions nodsp;
  nodsp.maxdsp = 0;
  nodsp.area.pack_factor = 1.0;
  SynthReport rn = synthesize(d, nodsp);
  EXPECT_EQ(r.n_dsp, 0);
  EXPECT_EQ(rn.n_lut, 17);  // just the adder
}

TEST(Synthesize, DeviceUtilization) {
  Device dev = xcvu9p();
  EXPECT_EQ(dev.luts, 1182240);
  EXPECT_EQ(dev.ffs, 2364480);
  EXPECT_EQ(dev.dsps, 6840);
  EXPECT_EQ(dev.ios, 702);
  SynthReport r;
  r.n_lut = dev.luts / 2;
  EXPECT_DOUBLE_EQ(r.lut_util(dev), 50.0);
}

TEST(Synthesize, CsdAblationChangesConstMultCost) {
  Design d("csd");
  NodeId a = d.input("a", 12);
  // 0b111 = 7: binary needs 3 digits (2 adders), CSD needs 2 (1 adder).
  d.output("o", d.mul(a, d.constant(4, 7), 16));
  SynthOptions csd;
  csd.maxdsp = 0;
  SynthOptions naive = csd;
  naive.csd_recoding = false;
  SynthReport rc = synthesize(d, csd);
  SynthReport rn = synthesize(d, naive);
  EXPECT_LT(rc.n_lut, rn.n_lut);
}

}  // namespace
}  // namespace hlshc::synth
