// Unit tests for the netlist IR: construction, validation, topological
// ordering, statistics and the optimization passes.
#include "netlist/dump.hpp"
#include "netlist/ir.hpp"
#include "netlist/passes.hpp"

#include <gtest/gtest.h>

namespace hlshc::netlist {
namespace {

TEST(NetlistIr, BuildAndInspect) {
  Design d("t");
  NodeId a = d.input("a", 8);
  NodeId b = d.input("b", 8);
  NodeId s = d.add(a, b, 9);
  d.output("s", s);
  EXPECT_EQ(d.inputs().size(), 2u);
  EXPECT_EQ(d.outputs().size(), 1u);
  EXPECT_EQ(d.node(s).width, 9);
  EXPECT_EQ(d.find_input("a"), a);
  EXPECT_EQ(d.find_input("zz"), kInvalidNode);
  EXPECT_EQ(d.io_bit_count(), 8 + 8 + 9);
  EXPECT_NO_THROW(d.validate());
}

TEST(NetlistIr, DuplicatePortNamesRejected) {
  Design d("t");
  d.input("a", 8);
  EXPECT_THROW(d.input("a", 4), Error);
  NodeId c = d.constant(4, 1);
  d.output("o", c);
  EXPECT_THROW(d.output("o", c), Error);
}

TEST(NetlistIr, RegisterFeedbackLoopIsLegal) {
  Design d("counter");
  NodeId cnt = d.reg(4, 0, "cnt");
  NodeId nxt = d.add(cnt, d.constant(4, 1), 4);
  d.set_reg_next(cnt, nxt);
  d.output("q", cnt);
  EXPECT_NO_THROW(d.validate());
  auto order = d.topo_order();
  EXPECT_EQ(order.size(), d.node_count());
}

TEST(NetlistIr, CombinationalCycleDetected) {
  Design d("bad");
  NodeId a = d.input("a", 4);
  NodeId x = d.add(a, a, 4);
  // Force a cycle by making x depend on itself via mutable access.
  d.mutable_node(x).operands[1] = x;
  EXPECT_THROW(d.topo_order(), Error);
}

TEST(NetlistIr, RegWithoutNextFailsValidation) {
  Design d("t");
  d.reg(4, 0, "r");
  EXPECT_THROW(d.validate(), Error);
}

TEST(NetlistIr, MuxSelectorMustBeOneBit) {
  Design d("t");
  NodeId a = d.input("a", 4);
  NodeId m = d.mux(a, a, a, 4);  // 4-bit selector: caught by validate
  d.output("o", m);
  EXPECT_THROW(d.validate(), Error);
}

TEST(NetlistIr, SliceBoundsChecked) {
  Design d("t");
  NodeId a = d.input("a", 8);
  EXPECT_THROW(d.slice(a, 8, 0), Error);
  EXPECT_THROW(d.slice(a, 3, 4), Error);
  EXPECT_NO_THROW(d.slice(a, 7, 0));
}

TEST(NetlistIr, MemoryRoundTripNodes) {
  Design d("m");
  int mem = d.add_memory("buf", 16, 64);
  NodeId addr = d.input("addr", 6);
  NodeId data = d.input("data", 16);
  NodeId we = d.input("we", 1);
  d.mem_write(mem, addr, data, we);
  NodeId rd = d.mem_read(mem, addr);
  d.output("q", rd);
  EXPECT_NO_THROW(d.validate());
  EXPECT_EQ(d.mem_writes().size(), 1u);
  EXPECT_EQ(d.node(rd).width, 16);
}

TEST(NetlistIr, StatsCountOperatorClasses) {
  Design d("s");
  NodeId a = d.input("a", 8);
  NodeId k = d.constant(8, 3);
  NodeId m1 = d.mul(a, k, 16);       // const mult
  NodeId m2 = d.mul(a, a, 16);       // true mult
  NodeId s1 = d.add(m1, m2, 17);
  NodeId r = d.reg(17, 0, "r");
  d.set_reg_next(r, s1);
  d.output("o", r);
  DesignStats st = compute_stats(d);
  EXPECT_EQ(st.const_mults, 1);
  EXPECT_EQ(st.multipliers, 1);
  EXPECT_EQ(st.adders, 1);
  EXPECT_EQ(st.regs, 1);
  EXPECT_EQ(st.reg_bits, 17);
}

TEST(NetlistPasses, ConstantFolding) {
  Design d("f");
  NodeId a = d.constant(8, 5);
  NodeId b = d.constant(8, 7);
  NodeId s = d.add(a, b, 8);
  NodeId m = d.mul(s, d.constant(8, 2), 8);
  d.output("o", m);
  PassStats st = fold_constants(d);
  EXPECT_GE(st.folded, 2);
  EXPECT_EQ(d.node(m).op, Op::Const);
  EXPECT_EQ(d.node(m).imm, 24);
}

TEST(NetlistPasses, FoldRespectsWrapSemantics) {
  Design d("f");
  NodeId a = d.constant(8, 100);
  NodeId s = d.add(a, a, 8);  // 200 wraps to -56 at 8 bits
  d.output("o", s);
  fold_constants(d);
  EXPECT_EQ(d.node(s).imm, -56);
}

TEST(NetlistPasses, DeadCodeElimination) {
  Design d("dce");
  NodeId a = d.input("a", 8);
  NodeId used = d.add(a, a, 8);
  d.add(used, a, 8);  // dead
  d.mul(a, a, 16);    // dead
  d.output("o", used);
  PassStats st;
  Design out = eliminate_dead(d, &st);
  EXPECT_EQ(st.removed, 2);
  EXPECT_NO_THROW(out.validate());
  EXPECT_EQ(out.outputs().size(), 1u);
}

TEST(NetlistPasses, DcePreservesRegisterFeedback) {
  Design d("cnt");
  NodeId cnt = d.reg(4, 3, "cnt");
  d.set_reg_next(cnt, d.add(cnt, d.constant(4, 1), 4));
  d.output("q", cnt);
  Design out = optimize(d);
  EXPECT_NO_THROW(out.validate());
  // The counter must survive: a register and its increment logic.
  DesignStats st = compute_stats(out);
  EXPECT_EQ(st.regs, 1);
  EXPECT_EQ(st.adders, 1);
}

TEST(NetlistPasses, DcePreservesMemories) {
  Design d("m");
  int mem = d.add_memory("buf", 8, 16);
  NodeId addr = d.input("addr", 4);
  NodeId data = d.input("data", 8);
  d.mem_write(mem, addr, data, d.input("we", 1));
  d.output("q", d.mem_read(mem, addr));
  Design out = optimize(d);
  EXPECT_EQ(out.memories().size(), 1u);
  EXPECT_EQ(out.mem_writes().size(), 1u);
}

TEST(NetlistDump, TextAndDotContainStructure) {
  Design d("dumpme");
  NodeId a = d.input("a", 8);
  d.output("o", d.add(a, d.constant(8, 1), 8));
  std::string text = dump_text(d);
  EXPECT_NE(text.find("design dumpme"), std::string::npos);
  EXPECT_NE(text.find("add<8>"), std::string::npos);
  std::string dot = dump_dot(d);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  std::string sum = summarize(d);
  EXPECT_NE(sum.find("1 adders"), std::string::npos);
}

}  // namespace
}  // namespace hlshc::netlist
