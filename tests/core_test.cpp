// Tests for the methodology layer: LOC counting, line diff, the metric
// equations, and the end-to-end evaluation procedure.
#include "core/diff.hpp"
#include "core/evaluate.hpp"
#include "core/loc.hpp"
#include "core/metrics.hpp"
#include "core/report.hpp"

#include <gtest/gtest.h>

#include "rtl/designs.hpp"

namespace hlshc::core {
namespace {

// ---- LOC ----------------------------------------------------------------------

TEST(Loc, CountsCodeCommentsAndBlanks) {
  const std::string text =
      "// header comment\n"
      "\n"
      "int x = 1;  // trailing comment counts as code\n"
      "/* block\n"
      "   comment */\n"
      "int y = 2;\n";
  LocCount c = count_loc(text, Language::kC);
  EXPECT_EQ(c.code, 2);
  EXPECT_EQ(c.comment, 3);
  EXPECT_EQ(c.blank, 1);
}

TEST(Loc, BlockCommentWithTrailingCode) {
  LocCount c = count_loc("/* a */ int x;\n", Language::kVerilog);
  EXPECT_EQ(c.code, 1);
}

TEST(Loc, ConfigFilesUseHashComments) {
  LocCount c = count_loc("# option\nfoo = 1\n\n", Language::kConfig);
  EXPECT_EQ(c.code, 1);
  EXPECT_EQ(c.comment, 1);
  EXPECT_EQ(c.blank, 1);
}

TEST(Loc, LanguageFromExtension) {
  EXPECT_EQ(language_of("a/idct.v"), Language::kVerilog);
  EXPECT_EQ(language_of("Idct.scala"), Language::kScala);
  EXPECT_EQ(language_of("Idct.bsv"), Language::kBsv);
  EXPECT_EQ(language_of("idct.x"), Language::kDslx);
  EXPECT_EQ(language_of("K.maxj"), Language::kMaxj);
  EXPECT_EQ(language_of("idct.c"), Language::kC);
  EXPECT_EQ(language_of("opt.cfg"), Language::kConfig);
}

TEST(Loc, ShippedSourcesAreCountable) {
  // Every file the flows account must exist and contain real code.
  const char* files[] = {
      "verilog/idct_initial.v", "verilog/idct_opt.v",
      "chisel/Butterfly.scala", "chisel/IdctInitial.scala",
      "chisel/IdctOpt.scala",   "bsv/IdctFuncs.bsv",
      "bsv/IdctInitial.bsv",    "bsv/IdctOpt.bsv",
      "dslx/idct.x",            "dslx/axis_adapter.v",
      "dslx/xls_opt.cfg",       "maxj/IdctMath.maxj",
      "maxj/IdctMatrixKernel.maxj", "maxj/IdctRowKernel.maxj",
      "maxj/IdctManager.maxj",  "c/idct.c",
      "c/axis_adapter.v",       "c/bambu_opt.cfg",
      "c/idct_vhls.c",          "c/idct_vhls_opt.c",
  };
  for (const char* f : files)
    EXPECT_GT(count_data_file(f, language_of(f)).code, 0) << f;
}

TEST(Loc, MissingFileThrows) {
  EXPECT_THROW(count_data_file("nope/missing.v", Language::kVerilog), Error);
}

// ---- diff ----------------------------------------------------------------------

TEST(Diff, IdenticalTextsHaveZeroDelta) {
  EXPECT_EQ(diff_lines("a\nb\nc\n", "a\nb\nc\n").delta(), 0);
}

TEST(Diff, AddsAndRemovals) {
  DiffCount d = diff_lines("a\nb\nc\n", "a\nx\nc\ny\n");
  EXPECT_EQ(d.removed, 1);  // b
  EXPECT_EQ(d.added, 2);    // x, y
  EXPECT_EQ(d.delta(), 3);
}

TEST(Diff, BlankLinesIgnored) {
  EXPECT_EQ(diff_lines("a\n\n\nb\n", "a\nb\n").delta(), 0);
}

TEST(Diff, ReorderCountsBothSides) {
  DiffCount d = diff_lines("a\nb\n", "b\na\n");
  EXPECT_EQ(d.delta(), 2);
}

// ---- metrics ---------------------------------------------------------------------

TEST(Metrics, AutomationEquationOne) {
  // Paper example: Chisel initial LOC 195 vs Verilog 247 -> 21.1%.
  EXPECT_NEAR(automation_percent(195, 247), 21.05, 0.1);
  EXPECT_DOUBLE_EQ(automation_percent(247, 247), 0.0);
  EXPECT_LT(automation_percent(300, 247), 0.0);
}

TEST(Metrics, ControllabilityEquationTwo) {
  // Paper: Chisel 1,942 vs Verilog 2,155 -> 90.1%.
  EXPECT_NEAR(controllability_percent(1942, 2155), 90.1, 0.1);
}

TEST(Metrics, FlexibilityEquationThree) {
  // Paper: Verilog (2155 - 230) / 258 = 7.5.
  EXPECT_NEAR(flexibility(2155, 230, 258), 7.46, 0.05);
  EXPECT_DOUBLE_EQ(flexibility(100, 50, 0), 0.0);
}

TEST(Metrics, QualityIsOpsPerArea) {
  EXPECT_DOUBLE_EQ(quality(14.15e6, 6567), 14.15e6 / 6567);
  EXPECT_THROW(quality(1.0, 0), Error);
}

// ---- evaluation procedure -----------------------------------------------------------

TEST(Evaluate, VerilogInitialFullProcedure) {
  DesignEvaluation ev =
      evaluate_axis_design(rtl::build_verilog_initial());
  EXPECT_TRUE(ev.functional);
  EXPECT_EQ(ev.latency_cycles, 17);
  EXPECT_DOUBLE_EQ(ev.periodicity_cycles, 8.0);
  EXPECT_GT(ev.fmax_mhz, 20.0);
  EXPECT_GT(ev.area, 10000);
  EXPECT_EQ(ev.area, ev.n_lut_star + ev.n_ff_star);
  EXPECT_NEAR(ev.throughput_mops, ev.fmax_mhz / 8.0, 1e-9);
  EXPECT_GT(ev.quality(), 0.0);
}

TEST(Evaluate, DetectsTheOptimizationGain) {
  DesignEvaluation init =
      evaluate_axis_design(rtl::build_verilog_initial());
  DesignEvaluation opt = evaluate_axis_design(rtl::build_verilog_opt2());
  // Paper: quality x9.4 from initial to optimized Verilog.
  EXPECT_GT(opt.quality() / init.quality(), 3.0);
}

// ---- report ------------------------------------------------------------------------

TEST(Report, TableAlignsColumns) {
  Table t({"A", "Bee"});
  t.add_row({"longer", "x"});
  std::string s = t.render();
  EXPECT_NE(s.find("A       Bee"), std::string::npos);
  EXPECT_NE(s.find("longer  x"), std::string::npos);
}

TEST(Report, ScatterCsvShape) {
  std::vector<ScatterPoint> pts = {{"verilog", "initial", 6.99, 30396}};
  std::string csv = scatter_csv(pts);
  EXPECT_NE(csv.find("family,config,workload,throughput_mops,area,quality"),
            std::string::npos);
  EXPECT_NE(csv.find("verilog,initial,idct,6.990,30396,"), std::string::npos);
}

TEST(Report, HotspotTableRanksTogglesAndNamesNodes) {
  netlist::Design d("toy");
  netlist::NodeId a = d.input("busy_in", 8);
  netlist::NodeId b = d.input("quiet_in", 8);
  netlist::NodeId sum = d.add(a, b, 8);
  d.output("o", sum);

  sim::ActivityProfile p;
  p.cycles = 10;
  p.toggles.assign(d.node_count(), 0);
  p.reg_writes.assign(d.node_count(), 0);
  p.toggles[static_cast<size_t>(sum)] = 40;  // 4.00 toggles/cycle
  p.toggles[static_cast<size_t>(a)] = 7;

  std::string table = hotspot_table(d, p, 2);
  EXPECT_NE(table.find("activity hotspots: toy over 10 cycles"),
            std::string::npos);
  // Rank 1 is the adder (4.00 tgl/cyc), rank 2 the busier of the inputs;
  // top_n=2 keeps quiet_in out of the table entirely.
  EXPECT_NE(table.find("add"), std::string::npos);
  EXPECT_NE(table.find("busy_in"), std::string::npos);
  EXPECT_NE(table.find("4.00"), std::string::npos);
  EXPECT_EQ(table.find("quiet_in"), std::string::npos);
}

TEST(Report, HotspotTableFromLiveEngineRun) {
  netlist::Design d = rtl::build_verilog_opt2();
  std::unique_ptr<sim::Engine> e = sim::make_engine(d);
  e->set_activity_enabled(true);
  e->set_input("s_tvalid", 1);
  e->set_input("m_tready", 1);
  e->run(64);
  std::string table = hotspot_table(d, e->activity(), 10);
  EXPECT_NE(table.find("activity hotspots: verilog_opt2 over 64 cycles"),
            std::string::npos);
  EXPECT_NE(table.find("toggles"), std::string::npos);
}

TEST(Report, HotspotTableRejectsMismatchedProfile) {
  netlist::Design d = rtl::build_verilog_opt2();
  sim::ActivityProfile p;  // empty: built for no design at all
  EXPECT_THROW(hotspot_table(d, p, 10), hlshc::Error);
}

TEST(Report, ScatterSummaryGroupsByFamily) {
  std::vector<ScatterPoint> pts = {{"a", "1", 10, 100}, {"a", "2", 20, 100},
                                   {"b", "1", 1, 10}};
  std::string s = scatter_summary(pts);
  EXPECT_NE(s.find("a: 2 circuits"), std::string::npos);
  EXPECT_NE(s.find("b: 1 circuits"), std::string::npos);
}

}  // namespace
}  // namespace hlshc::core
