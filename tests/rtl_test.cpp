// Tests for the Verilog-style design family: bit-exact functional
// equivalence against the ISO 13818-4 software model, measured cycle
// behaviour, and the synthesis shape the paper reports (initial vs opt).
#include "rtl/designs.hpp"
#include "rtl/units.hpp"

#include <gtest/gtest.h>

#include "axis/testbench.hpp"
#include "base/rng.hpp"
#include "idct/chenwang.hpp"
#include "sim/simulator.hpp"
#include "synth/synthesize.hpp"

namespace hlshc::rtl {
namespace {

idct::Block random_block(SplitMix64& rng) {
  idct::Block b{};
  for (auto& v : b)
    v = static_cast<int32_t>(rng.next_in(idct::kCoeffMin, idct::kCoeffMax));
  return b;
}

idct::Block software_idct(const idct::Block& in) {
  idct::Block b = in;
  idct::idct_2d(b);
  return b;
}

// ---- unit-level -------------------------------------------------------------

TEST(Units, RowUnitMatchesSoftwareRowPass) {
  netlist::Design d("row");
  std::array<netlist::NodeId, 8> in;
  for (int c = 0; c < 8; ++c)
    in[static_cast<size_t>(c)] = d.input("i" + std::to_string(c), 12);
  auto out = build_row_unit(d, in);
  for (int c = 0; c < 8; ++c)
    d.output("o" + std::to_string(c), out[static_cast<size_t>(c)]);

  sim::Simulator sim(d);
  SplitMix64 rng(1);
  for (int iter = 0; iter < 500; ++iter) {
    int32_t row[8];
    for (int c = 0; c < 8; ++c) {
      row[c] = static_cast<int32_t>(
          rng.next_in(idct::kCoeffMin, idct::kCoeffMax));
      sim.set_input("i" + std::to_string(c), row[c]);
    }
    sim.eval();
    idct::idct_row_straight(row);
    for (int c = 0; c < 8; ++c)
      EXPECT_EQ(sim.output_i64("o" + std::to_string(c)), row[c]);
  }
}

TEST(Units, ColUnitMatchesSoftwareColPass) {
  netlist::Design d("col");
  std::array<netlist::NodeId, 8> in;
  for (int r = 0; r < 8; ++r)
    in[static_cast<size_t>(r)] = d.input("i" + std::to_string(r), 20);
  auto out = build_col_unit(d, in);
  for (int r = 0; r < 8; ++r)
    d.output("o" + std::to_string(r), out[static_cast<size_t>(r)]);

  sim::Simulator sim(d);
  SplitMix64 rng(2);
  for (int iter = 0; iter < 500; ++iter) {
    int32_t col[64] = {};
    for (int r = 0; r < 8; ++r) {
      col[8 * r] = static_cast<int32_t>(rng.next_in(-170000, 170000));
      sim.set_input("i" + std::to_string(r), col[8 * r]);
    }
    sim.eval();
    idct::idct_col_straight(col);
    for (int r = 0; r < 8; ++r)
      EXPECT_EQ(sim.output_i64("o" + std::to_string(r)), col[8 * r]);
  }
}

TEST(Units, Clip9Saturates) {
  netlist::Design d("clip");
  netlist::NodeId v = d.input("v", 20);
  d.output("o", build_clip9(d, v));
  sim::Simulator sim(d);
  for (int64_t x : {-300000L, -257L, -256L, -1L, 0L, 255L, 256L, 77777L}) {
    sim.set_input("v", x);
    sim.eval();
    EXPECT_EQ(sim.output_i64("o"), idct::iclip(x)) << x;
  }
}

TEST(Units, MuxByIndexSelects) {
  netlist::Design d("mux");
  netlist::NodeId sel = d.input("sel", 3);
  std::vector<netlist::NodeId> items;
  for (int i = 0; i < 8; ++i) items.push_back(d.constant(8, 10 * i));
  d.output("o", mux_by_index(d, sel, items));
  sim::Simulator sim(d);
  for (int i = 0; i < 8; ++i) {
    sim.set_input("sel", i);
    sim.eval();
    EXPECT_EQ(sim.output_i64("o"), 10 * i);
  }
}

// ---- design-level -----------------------------------------------------------

struct DesignCase {
  const char* label;
  netlist::Design (*build)();
  int latency;
  double periodicity;
};

class VerilogFamily : public ::testing::TestWithParam<DesignCase> {};

TEST_P(VerilogFamily, BitExactAgainstSoftwareModel) {
  netlist::Design d = GetParam().build();
  sim::Simulator sim(d);
  axis::StreamTestbench tb(sim);
  SplitMix64 rng(42);
  std::vector<idct::Block> ins;
  for (int i = 0; i < 8; ++i) ins.push_back(random_block(rng));
  auto out = tb.run(ins);
  ASSERT_EQ(out.size(), ins.size());
  for (size_t i = 0; i < ins.size(); ++i)
    EXPECT_EQ(out[i], software_idct(ins[i]))
        << GetParam().label << " matrix " << i;
  EXPECT_TRUE(tb.monitor().clean());
}

TEST_P(VerilogFamily, MeasuredCycleBehaviourMatchesPaper) {
  netlist::Design d = GetParam().build();
  sim::Simulator sim(d);
  axis::StreamTestbench tb(sim);
  SplitMix64 rng(43);
  std::vector<idct::Block> ins;
  for (int i = 0; i < 6; ++i) ins.push_back(random_block(rng));
  tb.run(ins);
  EXPECT_EQ(tb.timing().latency_cycles, GetParam().latency);
  EXPECT_DOUBLE_EQ(tb.timing().periodicity_cycles, GetParam().periodicity);
}

TEST_P(VerilogFamily, SurvivesBackpressure) {
  netlist::Design d = GetParam().build();
  sim::Simulator sim(d);
  axis::StreamTestbench tb(sim);
  tb.sink().set_backpressure(3, 4);
  SplitMix64 rng(44);
  std::vector<idct::Block> ins;
  for (int i = 0; i < 3; ++i) ins.push_back(random_block(rng));
  auto out = tb.run(ins);
  for (size_t i = 0; i < ins.size(); ++i)
    EXPECT_EQ(out[i], software_idct(ins[i]));
  EXPECT_TRUE(tb.monitor().clean());
}

INSTANTIATE_TEST_SUITE_P(
    AllDesigns, VerilogFamily,
    ::testing::Values(
        DesignCase{"initial", &build_verilog_initial, 17, 8.0},
        DesignCase{"opt1", &build_verilog_opt1, 17, 8.0},
        DesignCase{"opt2", &build_verilog_opt2, 24, 8.0}),
    [](const ::testing::TestParamInfo<DesignCase>& info) {
      return info.param.label;
    });

// ---- synthesis shape --------------------------------------------------------

TEST(VerilogSynthesis, OptimizationShrinksAreaAndRaisesFmax) {
  // The paper: opt2 throughput x2 over initial, area / 4.6, quality x9.4.
  auto init = synth::synthesize_normalized(build_verilog_initial());
  auto opt1 = synth::synthesize_normalized(build_verilog_opt1());
  auto opt2 = synth::synthesize_normalized(build_verilog_opt2());

  EXPECT_GT(opt1.normal.fmax_mhz, init.normal.fmax_mhz);
  EXPECT_GT(opt2.normal.fmax_mhz, 1.5 * init.normal.fmax_mhz);
  EXPECT_LT(opt1.area(), init.area());
  EXPECT_LT(opt2.area(), opt1.area());
  EXPECT_GT(static_cast<double>(init.area()),
            3.0 * static_cast<double>(opt2.area()));
}

TEST(VerilogSynthesis, InitialUsesManyDspsOptUsesFew) {
  auto init = synth::synthesize(build_verilog_initial());
  auto opt2 = synth::synthesize(build_verilog_opt2());
  EXPECT_GT(init.n_dsp, 100);  // paper: 160
  EXPECT_LT(opt2.n_dsp, 40);   // paper: 20
}

TEST(VerilogSynthesis, IoPinCountMatchesStreamInterface) {
  auto rep = synth::synthesize(build_verilog_initial());
  // 96 data in + 72 data out + tvalid/tready/tlast on both sides = 174.
  EXPECT_EQ(rep.n_io, 174);
}

}  // namespace
}  // namespace hlshc::rtl
