// The unified compile pipeline: pass registry, PassManager fixed-point
// driver, the new optimization passes (CSE, copy propagation, mux/boolean
// simplification, strength reduction), the differential verify hook, and
// the tools::compile canonical entry that every flow routes through.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "base/rng.hpp"
#include "netlist/ir.hpp"
#include "netlist/pass_manager.hpp"
#include "netlist/passes.hpp"
#include "rtl/designs.hpp"
#include "sim/engine.hpp"
#include "sim/verify.hpp"
#include "tools/compile.hpp"

namespace hlshc::netlist {
namespace {

/// Engine trace over both implementations for behavioural comparison.
std::vector<int64_t> trace(const Design& d, sim::EngineKind kind,
                           uint64_t seed = 7, int cycles = 12) {
  std::unique_ptr<sim::Engine> eng = sim::make_engine(d, kind);
  eng->reset();
  SplitMix64 rng(seed);
  std::vector<int64_t> out;
  for (int t = 0; t < cycles; ++t) {
    for (NodeId in : d.inputs()) {
      const Node& n = d.node(in);
      eng->set_input(n.name,
                     BitVec(n.width, static_cast<int64_t>(rng.next())));
    }
    eng->eval();
    for (NodeId o : d.outputs())
      out.push_back(eng->output(d.node(o).name).to_int64());
    eng->step();
  }
  return out;
}

void expect_equivalent(const Design& a, const Design& b) {
  for (sim::EngineKind kind :
       {sim::EngineKind::kInterpreter, sim::EngineKind::kCompiled})
    EXPECT_EQ(trace(a, kind), trace(b, kind))
        << "designs diverged on the " << sim::engine_kind_name(kind)
        << " engine";
}

size_t count_op(const Design& d, Op op) {
  size_t n = 0;
  for (size_t i = 0; i < d.node_count(); ++i)
    if (d.node(static_cast<NodeId>(i)).op == op) ++n;
  return n;
}

// ---- registry --------------------------------------------------------------

TEST(PassRegistry, ListsAllPassesAndInstantiatesThem) {
  auto names = registered_pass_names();
  ASSERT_EQ(names.size(), 7u);
  for (const char* expected :
       {"fold_constants", "narrow", "strength_reduce", "mux_simplify",
        "copy_prop", "cse", "eliminate_dead"})
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  for (const std::string& n : names) {
    auto pass = make_pass(n);
    ASSERT_NE(pass, nullptr);
    EXPECT_EQ(pass->name(), n);
  }
}

TEST(PassRegistry, UnknownNameThrows) {
  EXPECT_THROW(make_pass("not_a_pass"), Error);
  PassManager pm;
  EXPECT_THROW(pm.add("not_a_pass"), Error);
}

TEST(PassRegistry, DefaultPipelineOrder) {
  PassManager base = default_pipeline();
  EXPECT_EQ(base.size(), 6u);
  EXPECT_EQ(base.pass_names()[1], "narrow");
  PassManager pre_narrow = default_pipeline(/*strength_reduce=*/false,
                                            /*narrow=*/false);
  EXPECT_EQ(pre_narrow.size(), 5u);
  PassManager sr = default_pipeline(/*strength_reduce=*/true);
  EXPECT_EQ(sr.size(), 7u);
  auto names = sr.pass_names();
  EXPECT_EQ(names.front(), "fold_constants");
  EXPECT_EQ(names[1], "narrow");
  EXPECT_EQ(names[2], "strength_reduce");
  EXPECT_EQ(names.back(), "eliminate_dead");
}

// ---- CSE -------------------------------------------------------------------

TEST(Cse, MergesStructuralDuplicates) {
  Design d("cse");
  NodeId a = d.input("a", 8), b = d.input("b", 8);
  NodeId s1 = d.add(a, b, 9);
  NodeId s2 = d.add(a, b, 9);  // identical
  d.output("o", d.bxor(s1, s2, 9));
  Design t = d;
  EXPECT_GT(eliminate_common_subexpr(t), 0);
  t = eliminate_dead(t);
  EXPECT_LT(t.node_count(), d.node_count());
  expect_equivalent(d, t);
}

TEST(Cse, MatchesCommutativeOperandOrder) {
  Design d("cse_comm");
  NodeId a = d.input("a", 8), b = d.input("b", 8);
  NodeId s1 = d.add(a, b, 9);
  NodeId s2 = d.add(b, a, 9);  // same value, swapped operands
  NodeId m1 = d.mul(a, b, 16);
  NodeId m2 = d.mul(b, a, 16);
  d.output("o1", d.bxor(s1, s2, 9));
  d.output("o2", d.bxor(m1, m2, 16));
  Design t = d;
  EXPECT_GE(eliminate_common_subexpr(t), 2);
  expect_equivalent(d, t);
}

TEST(Cse, DoesNotMergeNonCommutativeSwaps) {
  Design d("cse_sub");
  NodeId a = d.input("a", 8), b = d.input("b", 8);
  NodeId s1 = d.sub(a, b, 9);
  NodeId s2 = d.sub(b, a, 9);  // different value!
  d.output("o", d.bxor(s1, s2, 9));
  Design t = d;
  eliminate_common_subexpr(t);
  expect_equivalent(d, t);
}

TEST(Cse, LeavesRegistersAlone) {
  Design d("cse_reg");
  NodeId a = d.input("a", 8);
  NodeId r1 = d.reg(8, 0, "r1");
  NodeId r2 = d.reg(8, 0, "r2");  // same shape but distinct state
  d.set_reg_next(r1, a);
  d.set_reg_next(r2, d.bnot(a, 8));
  d.output("o", d.bxor(r1, r2, 8));
  Design t = d;
  eliminate_common_subexpr(t);
  EXPECT_EQ(count_op(t, Op::Reg), 2u);
  expect_equivalent(d, t);
}

// ---- copy propagation ------------------------------------------------------

TEST(CopyProp, ForwardsThroughWiringOps) {
  Design d("cp");
  NodeId a = d.input("a", 8);
  NodeId c1 = d.sext(a, 8);              // same-width sext
  NodeId c2 = d.slice(c1, 7, 0);         // full-range slice
  NodeId c3 = d.shl(c2, 0, 8);           // shift by zero
  d.output("o", d.add(c3, a, 9));
  Design t = d;
  EXPECT_GT(propagate_copies(t), 0);
  // After DCE the wiring chain is gone: the add reads the input directly.
  t = eliminate_dead(t);
  EXPECT_EQ(count_op(t, Op::SExt), 0u);
  EXPECT_EQ(count_op(t, Op::Slice), 0u);
  expect_equivalent(d, t);
}

TEST(CopyProp, KeepsWidthChangingOps) {
  Design d("cp_widen");
  NodeId a = d.input("a", 8);
  NodeId wide = d.sext(a, 12);  // widening: NOT a copy
  d.output("o", wide);
  Design t = d;
  EXPECT_EQ(propagate_copies(t), 0);
  expect_equivalent(d, t);
}

// ---- mux / boolean simplification ------------------------------------------

TEST(MuxSimplify, ConstantSelectPicksBranch) {
  Design d("mux_const");
  NodeId a = d.input("a", 8), b = d.input("b", 8);
  NodeId sel = d.constant(1, 1);
  d.output("o", d.mux(sel, a, b, 8));
  Design t = d;
  EXPECT_GT(simplify_mux_bool(t), 0);
  expect_equivalent(d, t);
}

TEST(MuxSimplify, IdenticalBranchesCollapse) {
  Design d("mux_same");
  NodeId a = d.input("a", 8);
  NodeId s = d.input("s", 1);
  d.output("o", d.mux(s, a, a, 8));
  Design t = d;
  EXPECT_GT(simplify_mux_bool(t), 0);
  expect_equivalent(d, t);
}

TEST(MuxSimplify, BooleanAndArithmeticIdentities) {
  Design d("ident");
  NodeId a = d.input("a", 8);
  NodeId zero = d.constant(8, 0);
  NodeId ones = d.constant(8, -1);
  NodeId one = d.constant(8, 1);
  d.output("and0", d.band(a, zero, 8));   // -> 0
  d.output("or1", d.bor(a, ones, 8));     // -> ~0
  d.output("xorx", d.bxor(a, a, 8));      // -> 0
  d.output("add0", d.add(a, zero, 8));    // -> a
  d.output("subx", d.sub(a, a, 8));       // -> 0
  d.output("mul1", d.mul(a, one, 8));     // -> a
  d.output("nn", d.bnot(d.bnot(a, 8), 8));  // -> a
  d.output("eqx", d.eq(a, a));            // -> 1
  Design t = d;
  EXPECT_GE(simplify_mux_bool(t), 8);
  expect_equivalent(d, t);
  // A second application finds nothing new (fixed point per pass).
  Design again = t;
  simplify_mux_bool(again);
  expect_equivalent(t, again);
}

// ---- strength reduction ----------------------------------------------------

TEST(StrengthReduce, ExpandsConstantMultiplies) {
  Design d("sr");
  NodeId a = d.input("a", 12);
  NodeId c = d.constant(12, 181);  // the paper's 0.5*sqrt(2) scale constant
  d.output("o", d.mul(a, c, 24));
  Design t = d;
  EXPECT_EQ(strength_reduce_mults(t), 1);
  t.validate();
  EXPECT_EQ(count_op(t, Op::Mul), 0u);
  expect_equivalent(d, t);
  // Idempotent: nothing left to expand.
  EXPECT_EQ(strength_reduce_mults(t), 0);
}

TEST(StrengthReduce, LeavesVariableMultipliesAlone) {
  Design d("sr_var");
  NodeId a = d.input("a", 8), b = d.input("b", 8);
  d.output("o", d.mul(a, b, 16));
  Design t = d;
  EXPECT_EQ(strength_reduce_mults(t), 0);
  EXPECT_EQ(count_op(t, Op::Mul), 1u);
}

TEST(StrengthReduce, PreservesRegisterFeedbackAndNegatives) {
  Design d("sr_reg");
  NodeId a = d.input("a", 10);
  NodeId r = d.reg(20, 3, "acc");
  NodeId scaled = d.mul(a, d.constant(10, -23), 20);
  d.set_reg_next(r, d.add(r, scaled, 20));
  d.output("o", r);
  Design t = d;
  EXPECT_EQ(strength_reduce_mults(t), 1);
  t.validate();
  expect_equivalent(d, t);
}

TEST(StrengthReduce, BuildShiftAddMatchesMultiply) {
  for (int64_t c : {0LL, 1LL, -1LL, 7LL, 100LL, -255LL, 1024LL}) {
    Design d("bsa");
    NodeId a = d.input("a", 12);
    d.output("ref", d.mul(a, d.constant(12, c), 24));
    for (bool csd : {true, false}) {
      Design t("bsa_tree");
      NodeId x = t.input("a", 12);
      t.output("ref", build_shift_add(t, x, c, 24, csd));
      t.validate();
      expect_equivalent(d, t);
    }
  }
}

// ---- PassManager -----------------------------------------------------------

TEST(PassManagerDriver, ReachesAFixedPoint) {
  Design d = rtl::build_verilog_initial();
  PassStats stats;
  Design out = default_pipeline().run(d, &stats);
  EXPECT_GE(stats.iterations, 1);
  EXPECT_LE(stats.iterations, 10);
  EXPECT_LT(out.node_count(), d.node_count());
  // Re-running the pipeline on its own output changes nothing.
  PassStats again;
  Design out2 = default_pipeline().run(out, &again);
  EXPECT_EQ(out2.node_count(), out.node_count());
  EXPECT_EQ(again.nodes_delta(), 0);
}

TEST(PassManagerDriver, SingleIterationWhenFixedPointDisabled) {
  Design d = rtl::build_verilog_initial();
  PassStats stats;
  PipelineOptions opts;
  opts.fixed_point = false;
  default_pipeline().run(d, &stats, opts);
  EXPECT_EQ(stats.iterations, 1);
  EXPECT_EQ(stats.runs.size(), default_pipeline().size());
}

TEST(PassManagerDriver, StatsBreakdownCoversEveryRun) {
  Design d = rtl::build_verilog_initial();
  PassStats stats;
  Design out = default_pipeline().run(d, &stats);
  ASSERT_FALSE(stats.runs.empty());
  EXPECT_EQ(stats.nodes_before(), d.node_count());
  EXPECT_EQ(stats.nodes_after(), out.node_count());
  EXPECT_EQ(stats.nodes_delta(),
            static_cast<int64_t>(d.node_count()) -
                static_cast<int64_t>(out.node_count()));
  auto names = registered_pass_names();
  int total = 0;
  for (const PassRun& run : stats.runs) {
    EXPECT_NE(std::find(names.begin(), names.end(), run.pass), names.end());
    EXPECT_GE(run.iteration, 1);
    EXPECT_GE(run.changes, 0);
    EXPECT_GE(run.wall_ns, 0);
    total += run.changes;
  }
  EXPECT_EQ(total, stats.total_changes());
  EXPECT_GT(total, 0);
}

TEST(PassManagerDriver, StatsMergeAccumulates) {
  PassStats a, b;
  a.folded = 2;
  a.iterations = 1;
  a.runs.push_back({"fold_constants", 1, 2, 100, 98, 5});
  b.removed = 3;
  b.iterations = 2;
  b.runs.push_back({"eliminate_dead", 1, 3, 98, 95, 7});
  a.merge(b);
  EXPECT_EQ(a.folded, 2);
  EXPECT_EQ(a.removed, 3);
  EXPECT_EQ(a.iterations, 3);
  ASSERT_EQ(a.runs.size(), 2u);
  EXPECT_EQ(a.total_changes(), 5);
  EXPECT_EQ(a.nodes_before(), 100u);
  EXPECT_EQ(a.nodes_after(), 95u);
  EXPECT_EQ(a.nodes_delta(), 5);
}

TEST(PassManagerDriver, OptimizeMatchesLegacyBehaviour) {
  // A design where fold + DCE both fire: a fully-constant subtree feeding
  // an output through foldable arithmetic, plus a dead multiply.
  Design d("legacy");
  NodeId a = d.input("a", 8);
  NodeId c = d.add(d.constant(8, 3), d.constant(8, 4), 8);  // folds to 7
  d.mul(a, a, 16);  // dead
  d.output("o", d.add(a, c, 9));
  PassStats stats;
  Design out = optimize(d, &stats);
  EXPECT_GT(stats.folded, 0);
  EXPECT_GT(stats.removed, 0);
  EXPECT_LT(out.node_count(), d.node_count());
  expect_equivalent(d, out);
}

// ---- verify mode -----------------------------------------------------------

/// A deliberately broken pass: flips the first Add it finds into a Sub.
class BrokenSwapPass : public Pass {
 public:
  std::string name() const override { return "broken_swap"; }
  int run(Design& d) override {
    for (size_t i = 0; i < d.node_count(); ++i) {
      Node& n = d.mutable_node(static_cast<NodeId>(i));
      if (n.op == Op::Add) {
        n.op = Op::Sub;
        return 1;
      }
    }
    return 0;
  }
};

TEST(VerifyMode, CleanPipelinePassesVerification) {
  Design d = rtl::build_verilog_opt2();
  PipelineOptions opts;
  opts.verifier = sim::make_pass_verifier({/*cycles=*/8, /*seed=*/11});
  PassStats stats;
  EXPECT_NO_THROW(default_pipeline().run(d, &stats, opts));
  EXPECT_GT(stats.total_changes(), 0);
}

TEST(VerifyMode, BrokenPassIsCaughtAndNamed) {
  Design d("victim");
  NodeId a = d.input("a", 8), b = d.input("b", 8);
  d.output("o", d.add(a, b, 9));
  PassManager pm;
  pm.add(std::make_unique<BrokenSwapPass>());
  PipelineOptions opts;
  opts.verifier = sim::make_pass_verifier();
  try {
    pm.run(d, nullptr, opts);
    FAIL() << "broken pass escaped verification";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("broken_swap"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("diverged"), std::string::npos)
        << e.what();
  }
}

TEST(VerifyMode, DiffDesignsDetectsPortMismatch) {
  Design a("a");
  a.output("x", a.constant(4, 1));
  Design b("b");
  b.output("y", b.constant(4, 1));
  auto diff = sim::diff_designs(a, b);
  ASSERT_TRUE(diff.has_value());
}

TEST(VerifyMode, DiffDesignsAcceptsEquivalentRewrites) {
  Design a("a");
  NodeId x = a.input("x", 8);
  a.output("o", a.add(x, x, 9));
  Design b("b");
  NodeId y = b.input("x", 8);
  b.output("o", b.shl(b.sext(y, 9), 1, 9));  // x+x == x<<1
  EXPECT_FALSE(sim::diff_designs(a, b).has_value());
}

// ---- tools::compile (the canonical entry) ----------------------------------

TEST(ToolsCompile, DisabledPipelineIsIdentity) {
  Design d = rtl::build_verilog_opt2();
  tools::CompileOptions off;
  off.optimize = false;
  tools::CompiledDesign c = tools::compile(d, off);
  EXPECT_EQ(c.design.node_count(), d.node_count());
  EXPECT_TRUE(c.stats.runs.empty());
}

TEST(ToolsCompile, PipelineShrinksAndVerifies) {
  Design d = rtl::build_verilog_initial();
  tools::CompileOptions on;
  on.verify = true;
  on.verify_cycles = 8;
  tools::CompiledDesign c = tools::compile(d, on);
  EXPECT_LT(c.design.node_count(), d.node_count());
  EXPECT_GT(c.stats.total_changes(), 0);
  expect_equivalent(d, c.design);
}

TEST(ToolsCompile, SynthRoutesThroughThePipeline) {
  Design d = rtl::build_verilog_initial();
  synth::SynthReport direct = synth::synthesize(d);
  synth::SynthReport routed = tools::compile_synth(d);
  // synthesize() folds internally, so both see optimized logic; the routed
  // path must not be worse.
  EXPECT_LE(routed.n_lut, direct.n_lut);
  netlist::PassStats stats;
  synth::NormalizedSynth ns =
      tools::compile_synth_normalized(d, {}, {}, &stats);
  EXPECT_GT(ns.area(), 0);
  EXPECT_FALSE(stats.runs.empty());
}

TEST(ToolsCompile, RenderPassBreakdownNamesPassesAndDesign) {
  Design d = rtl::build_verilog_initial();
  tools::CompiledDesign c = tools::compile(d);
  std::string table = tools::render_pass_breakdown("verilog_initial",
                                                   c.stats);
  EXPECT_NE(table.find("verilog_initial"), std::string::npos);
  EXPECT_NE(table.find("fold_constants"), std::string::npos);
  EXPECT_NE(table.find("eliminate_dead"), std::string::npos);
}

}  // namespace
}  // namespace hlshc::netlist
