// Fault-injection subsystem tests: model determinism and validation, the
// simulator's injection hooks, campaign outcome classification on hand-built
// mini netlists, and the hardening guarantees (TMR masks single faults,
// parity detects single memory bit-flips).
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "axis/stream.hpp"
#include "fault/campaign.hpp"
#include "fault/harden.hpp"
#include "fault/model.hpp"
#include "netlist/ir.hpp"
#include "rtl/designs.hpp"
#include "sim/simulator.hpp"
#include "synth/synthesize.hpp"

namespace hlshc::fault {
namespace {

using netlist::Design;
using netlist::NodeId;
using netlist::Op;

/// Minimal canonical-port AXI-Stream DUT: a 1-cycle echo that truncates
/// 12-bit input lanes to the 9-bit output lanes, always ready, plus a
/// free-running counter register nothing consumes (dead state for
/// masked-fault cases).
Design mini_echo() {
  Design d("mini_echo");
  NodeId svalid = d.input("s_tvalid", 1);
  NodeId slast = d.input("s_tlast", 1);
  std::vector<NodeId> lanes;
  for (int c = 0; c < axis::kLanes; ++c)
    lanes.push_back(d.input(axis::lane_port("s", c), axis::kInElemWidth));
  d.input("m_tready", 1);
  d.output("s_tready", d.constant(1, 1));
  NodeId vreg = d.reg(1, 0, "v");
  d.set_reg_next(vreg, svalid);
  NodeId lreg = d.reg(1, 0, "l");
  d.set_reg_next(lreg, slast);
  for (int c = 0; c < axis::kLanes; ++c) {
    NodeId r = d.reg(axis::kOutElemWidth, 0, "d" + std::to_string(c));
    d.set_reg_next(r, d.slice(lanes[static_cast<size_t>(c)],
                              axis::kOutElemWidth - 1, 0));
    d.output(axis::lane_port("m", c), r);
  }
  d.output("m_tvalid", vreg);
  d.output("m_tlast", lreg);
  NodeId cnt = d.reg(8, 0, "spin");
  d.set_reg_next(cnt, d.add(cnt, d.constant(8, 1), 8));
  return d;
}

NodeId find_reg(const Design& d, const std::string& name) {
  for (size_t i = 0; i < d.node_count(); ++i) {
    const netlist::Node& n = d.node(static_cast<NodeId>(i));
    if (n.op == Op::Reg && n.name == name) return static_cast<NodeId>(i);
  }
  return netlist::kInvalidNode;
}

std::vector<std::string> site_keys(const std::vector<FaultSite>& sites) {
  std::vector<std::string> keys;
  for (const FaultSite& s : sites) keys.push_back(s.to_string());
  return keys;
}

// ---- fault model ----------------------------------------------------------

TEST(FaultModel, EnumerateRegSitesCoversEveryRegisterBit) {
  Design d = mini_echo();
  int reg_bits = 0;
  for (size_t i = 0; i < d.node_count(); ++i) {
    const netlist::Node& n = d.node(static_cast<NodeId>(i));
    if (n.op == Op::Reg) reg_bits += n.width;
  }
  auto sites = enumerate_reg_seu_sites(d, 3);
  EXPECT_EQ(static_cast<int>(sites.size()), reg_bits);
  for (const FaultSite& s : sites) {
    EXPECT_EQ(s.kind, FaultKind::kSeuReg);
    EXPECT_EQ(s.cycle, 3u);
    EXPECT_NO_THROW(validate_site(d, s));
  }
}

TEST(FaultModel, EnumerateMemSitesCoversEveryWordBit) {
  Design d("memstore");
  int mem = d.add_memory("buf", 8, 4);
  NodeId addr = d.input("addr", 2);
  NodeId data = d.input("data", 8);
  NodeId we = d.input("we", 1);
  d.mem_write(mem, addr, data, we);
  d.output("q", d.mem_read(mem, addr));
  auto sites = enumerate_mem_seu_sites(d, 0);
  EXPECT_EQ(sites.size(), 8u * 4u);
  for (const FaultSite& s : sites) EXPECT_NO_THROW(validate_site(d, s));
}

TEST(FaultModel, SamplingIsDeterministicInSeed) {
  Design d = rtl::build_verilog_opt2();
  auto a = sample_seu_sites(d, 64, 100, 7);
  auto b = sample_seu_sites(d, 64, 100, 7);
  auto c = sample_seu_sites(d, 64, 100, 8);
  EXPECT_EQ(site_keys(a), site_keys(b));
  EXPECT_NE(site_keys(a), site_keys(c));
  for (const FaultSite& s : a) EXPECT_NO_THROW(validate_site(d, s));
}

TEST(FaultModel, StuckSamplingValidatesAndAlternatesPolarity) {
  Design d = mini_echo();
  auto sites = sample_stuck_sites(d, 50, 11);
  ASSERT_EQ(sites.size(), 50u);
  bool saw0 = false, saw1 = false;
  for (const FaultSite& s : sites) {
    EXPECT_NO_THROW(validate_site(d, s));
    saw0 = saw0 || s.kind == FaultKind::kStuckAt0;
    saw1 = saw1 || s.kind == FaultKind::kStuckAt1;
  }
  EXPECT_TRUE(saw0);
  EXPECT_TRUE(saw1);
}

// ---- simulator hooks ------------------------------------------------------

TEST(Injection, FlipRegBitChangesStateUntilOverwritten) {
  Design d("hold");
  NodeId r = d.reg(8, 0, "r");
  NodeId en = d.input("en", 1);
  d.set_reg_next(r, d.constant(8, 0), en);
  d.output("q", r);
  sim::Simulator sim(d);
  sim.set_input("en", 0);
  sim.eval();
  EXPECT_EQ(sim.output_i64("q"), 0);
  sim.flip_reg_bit(r, 3);
  sim.eval();
  EXPECT_EQ(sim.output_i64("q"), 8);
  sim.step();  // enable low: the upset persists
  EXPECT_EQ(sim.output_i64("q"), 8);
  sim.set_input("en", 1);
  sim.step();  // overwritten by the next-value
  EXPECT_EQ(sim.output_i64("q"), 0);
}

namespace {
/// Test-only injector: forces one bit of one node high during eval.
class ForceBitHigh : public sim::FaultInjector {
 public:
  ForceBitHigh(NodeId node, int bit) : node_(node), bit_(bit) {}
  std::vector<NodeId> combinational_targets() const override {
    return {node_};
  }
  BitVec transform(NodeId, const BitVec& v, uint64_t) override {
    return BitVec::bor(
        v, BitVec(v.width(), static_cast<int64_t>(uint64_t{1} << bit_)),
        v.width());
  }

 private:
  NodeId node_;
  int bit_;
};
}  // namespace

TEST(Injection, CombinationalTransformAppliesAndDisarms) {
  Design d("wire");
  NodeId a = d.input("a", 8);
  NodeId o = d.output("o", a);
  sim::Simulator sim(d);
  ForceBitHigh force(o, 6);
  sim.set_fault_injector(&force);
  sim.set_input("a", 1);
  sim.eval();
  EXPECT_EQ(sim.output_i64("o"), 65);
  sim.set_fault_injector(nullptr);
  sim.eval();
  EXPECT_EQ(sim.output_i64("o"), 1);
}

// ---- campaign classification ---------------------------------------------

TEST(Campaign, ClassifiesMaskedSdcAndHang) {
  Design d = mini_echo();
  FaultSite masked{FaultKind::kSeuReg, find_reg(d, "spin"), -1, 0, 2, 1};
  FaultSite sdc{FaultKind::kSeuReg, find_reg(d, "d0"), -1, 0, 0, 1};
  FaultSite hang{FaultKind::kStuckAt0, d.find_output("m_tvalid"), -1, 0, 0, 0};
  CampaignOptions opts;
  opts.matrices = 1;
  opts.max_cycles = 500;
  CampaignReport rep = run_campaign(d, {masked, sdc, hang}, opts);
  EXPECT_FALSE(rep.reference_functional);  // echo, not an IDCT
  EXPECT_EQ(rep.counts.masked, 1);
  EXPECT_EQ(rep.counts.sdc, 1);
  EXPECT_EQ(rep.counts.hang, 1);
  EXPECT_EQ(rep.counts.detected, 0);
  ASSERT_EQ(rep.runs.size(), 3u);
  EXPECT_EQ(rep.runs[0].outcome, Outcome::kMasked);
  EXPECT_EQ(rep.runs[1].outcome, Outcome::kSdc);
  EXPECT_EQ(rep.runs[2].outcome, Outcome::kHang);
  EXPECT_NEAR(rep.counts.vulnerability(), 2.0 / 3.0, 1e-9);
}

TEST(Campaign, ProgressCallbackSeesRunningOutcomeMix) {
  Design d = mini_echo();
  std::vector<FaultSite> sites;
  for (int i = 0; i < 5; ++i)
    sites.push_back(
        FaultSite{FaultKind::kSeuReg, find_reg(d, "spin"), -1, 0, 2, 1});
  CampaignOptions opts;
  opts.matrices = 1;
  opts.max_cycles = 500;
  opts.progress_every = 2;
  // Per-site cadence is a scalar-loop contract: a lane-batched campaign
  // fires once per sweep at cadence crossings instead.
  opts.lanes = 1;
  std::vector<CampaignProgress> seen;
  opts.on_progress = [&](const CampaignProgress& p) { seen.push_back(p); };
  CampaignReport rep = run_campaign(d, sites, opts);

  // 5 sites at every-2 reporting: callbacks after sites 2 and 4.
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].design_name, "mini_echo");
  EXPECT_EQ(seen[0].completed, 2);
  EXPECT_EQ(seen[0].total, 5);
  EXPECT_EQ(seen[0].counts.total(), 2);
  EXPECT_EQ(seen[1].completed, 4);
  EXPECT_EQ(seen[1].counts.masked, 4);  // spin upsets are always masked
  EXPECT_EQ(rep.counts.masked, 5);
}

TEST(Campaign, ProgressDisabledWithNonPositivePeriod) {
  Design d = mini_echo();
  std::vector<FaultSite> sites(
      3, FaultSite{FaultKind::kSeuReg, find_reg(d, "spin"), -1, 0, 2, 1});
  CampaignOptions opts;
  opts.matrices = 1;
  opts.max_cycles = 500;
  opts.progress_every = 0;
  int calls = 0;
  opts.on_progress = [&](const CampaignProgress&) { ++calls; };
  run_campaign(d, sites, opts);
  EXPECT_EQ(calls, 0);
}

// A hostile on_progress callback must not be able to abort (or, under
// jobs > 1, deadlock) the campaign: the exception is caught, recorded once
// in progress_error, and the callback disarmed. Classification must be
// untouched — the counts match a clean run exactly.
TEST(Campaign, ThrowingProgressCallbackIsIsolated) {
  Design d = mini_echo();
  std::vector<FaultSite> sites(
      8, FaultSite{FaultKind::kSeuReg, find_reg(d, "spin"), -1, 0, 2, 1});
  CampaignOptions opts;
  opts.matrices = 1;
  opts.max_cycles = 500;
  opts.progress_every = 1;  // every completed site would report

  CampaignReport clean = run_campaign(d, sites, opts);

  for (const int jobs : {1, 8}) {
    SCOPED_TRACE("jobs=" + std::to_string(jobs));
    opts.jobs = jobs;
    std::atomic<int> calls{0};
    opts.on_progress = [&](const CampaignProgress&) {
      ++calls;
      throw std::runtime_error("progress observer exploded");
    };
    CampaignReport rep = run_campaign(d, sites, opts);

    // Disarmed after the first throw: invoked exactly once despite the
    // every-site cadence over 8 sites.
    EXPECT_EQ(calls.load(), 1);
    EXPECT_NE(rep.progress_error.find("progress observer exploded"),
              std::string::npos)
        << "progress_error: '" << rep.progress_error << '\'';
    EXPECT_EQ(rep.counts.masked, clean.counts.masked);
    EXPECT_EQ(rep.counts.sdc, clean.counts.sdc);
    EXPECT_EQ(rep.counts.detected, clean.counts.detected);
    EXPECT_EQ(rep.counts.hang, clean.counts.hang);
    ASSERT_EQ(rep.runs.size(), clean.runs.size());
    for (size_t i = 0; i < rep.runs.size(); ++i)
      EXPECT_EQ(rep.runs[i].outcome, clean.runs[i].outcome) << "site " << i;
  }
}

TEST(Campaign, WellBehavedCallbackReportsNoProgressError) {
  Design d = mini_echo();
  std::vector<FaultSite> sites(
      3, FaultSite{FaultKind::kSeuReg, find_reg(d, "spin"), -1, 0, 2, 1});
  CampaignOptions opts;
  opts.matrices = 1;
  opts.max_cycles = 500;
  opts.progress_every = 1;
  opts.on_progress = [](const CampaignProgress&) {};
  EXPECT_TRUE(run_campaign(d, sites, opts).progress_error.empty());
}

TEST(Campaign, TransientGlitchOnDataPathIsSdcOrMasked) {
  Design d = mini_echo();
  // A glitch on an output lane during the transfer corrupts a captured beat.
  FaultSite glitch{FaultKind::kTransient, d.find_output("m_tdata0"), -1, 0, 0,
                   2};
  CampaignOptions opts;
  opts.matrices = 1;
  opts.max_cycles = 500;
  CampaignReport rep = run_campaign(d, {glitch}, opts);
  EXPECT_EQ(rep.counts.sdc, 1);
}

TEST(Campaign, DetectorOutputTurnsSdcIntoDetected) {
  Design hardened = tmr(mini_echo(), {.with_detector = true});
  // Upset one copy's data register: the voter masks the corruption, but the
  // disagreement detector latches.
  NodeId victim = find_reg(hardened, "mini_echo.d0");
  ASSERT_NE(victim, netlist::kInvalidNode);
  FaultSite seu{FaultKind::kSeuReg, victim, -1, 0, 0, 1};
  CampaignOptions opts;
  opts.matrices = 1;
  opts.max_cycles = 500;
  CampaignReport rep = run_campaign(hardened, {seu}, opts);
  EXPECT_EQ(rep.counts.detected, 1);
  EXPECT_EQ(rep.counts.sdc, 0);
}

// ---- hardening guarantees -------------------------------------------------

TEST(Harden, TmrMasksEverySingleRegisterUpset) {
  Design hardened = tmr(mini_echo());
  CampaignOptions opts;
  opts.matrices = 1;
  opts.max_cycles = 500;
  std::vector<FaultSite> sites;
  for (uint64_t cycle : {0u, 1u, 2u, 5u})
    for (const FaultSite& s : enumerate_reg_seu_sites(hardened, cycle))
      sites.push_back(s);
  CampaignReport rep = run_campaign(hardened, sites, opts);
  EXPECT_EQ(rep.counts.sdc, 0);
  EXPECT_EQ(rep.counts.hang, 0);
  EXPECT_EQ(rep.counts.detected, 0);
  EXPECT_EQ(rep.counts.masked, rep.counts.total());
}

TEST(Harden, TmrVerilogOpt2NoSdcOnSampledRegisterSeu) {
  Design hardened = tmr(rtl::build_verilog_opt2());
  auto sites = sample_seu_sites(hardened, 40, 60, 2026);
  CampaignOptions opts;
  opts.matrices = 2;
  opts.max_cycles = 5000;
  CampaignReport rep = run_campaign(hardened, sites, opts);
  EXPECT_TRUE(rep.reference_functional);  // still a bit-exact IDCT
  EXPECT_EQ(rep.counts.sdc, 0);
  EXPECT_EQ(rep.counts.hang, 0);
}

TEST(Harden, TmrIsPortCompatibleAndCostsRoughlyThreeArea) {
  Design base = rtl::build_verilog_opt2();
  Design hardened = tmr(base);
  for (NodeId i : base.inputs())
    EXPECT_NE(hardened.find_input(base.node(i).name), netlist::kInvalidNode);
  for (NodeId o : base.outputs())
    EXPECT_NE(hardened.find_output(base.node(o).name), netlist::kInvalidNode);
  long a = synth::synthesize_normalized(base).area();
  long a3 = synth::synthesize_normalized(hardened).area();
  EXPECT_GT(a3, 2 * a);  // three copies plus voters
}

TEST(Harden, ParityDetectsSingleMemoryBitFlip) {
  Design d("memstore");
  int mem = d.add_memory("buf", 8, 4);
  NodeId addr = d.input("addr", 2);
  NodeId data = d.input("data", 8);
  NodeId we = d.input("we", 1);
  d.mem_write(mem, addr, data, we);
  d.output("q", d.mem_read(mem, addr));
  Design protected_d = parity_protect(d);
  ASSERT_EQ(protected_d.memories().size(), 1u);
  EXPECT_EQ(protected_d.memories()[0].width, 9);  // +1 parity bit

  sim::Simulator sim(protected_d);
  sim.set_input("addr", 2);
  sim.set_input("data", 0x5A);
  sim.set_input("we", 1);
  sim.step();
  sim.set_input("we", 0);
  sim.step();
  EXPECT_EQ(sim.output("q").to_uint64(), 0x5Au);  // round-trips unchanged
  EXPECT_EQ(sim.output_i64("parity_err"), 0);

  sim.flip_mem_bit(0, 2, 3);  // SEU in the stored word
  sim.step();
  EXPECT_EQ(sim.output("parity_err").to_uint64(), 1u);  // seen on the read
  sim.set_input("addr", 0);
  sim.step();
  EXPECT_EQ(sim.output("parity_err").to_uint64(), 1u);  // sticky thereafter
}

TEST(Harden, ParityErrStaysLowWithoutFaults) {
  Design d("memstore");
  int mem = d.add_memory("buf", 16, 8);
  NodeId addr = d.input("addr", 3);
  NodeId data = d.input("data", 16);
  NodeId we = d.input("we", 1);
  d.mem_write(mem, addr, data, we);
  d.output("q", d.mem_read(mem, addr));
  Design protected_d = parity_protect(d);
  sim::Simulator sim(protected_d);
  for (int i = 0; i < 8; ++i) {
    sim.set_input("addr", i);
    sim.set_input("data", 1000 + 77 * i);
    sim.set_input("we", 1);
    sim.step();
  }
  sim.set_input("we", 0);
  for (int i = 0; i < 8; ++i) {
    sim.set_input("addr", i);
    sim.step();
    EXPECT_EQ(sim.output_i64("q"), 1000 + 77 * i);
    EXPECT_EQ(sim.output_i64("parity_err"), 0);
  }
}

// ---- resilience evaluation ------------------------------------------------

TEST(Resilience, EvaluateJoinsCampaignWithCostModel) {
  Design d = rtl::build_verilog_opt2();
  auto sites = sample_seu_sites(d, 12, 60, 5);
  CampaignOptions opts;
  opts.matrices = 2;
  opts.max_cycles = 5000;
  DesignResilience r =
      evaluate_resilience(d, sites, synth::synthesize_normalized(d), opts);
  EXPECT_TRUE(r.campaign.reference_functional);
  EXPECT_EQ(r.campaign.counts.total(), 12);
  EXPECT_GT(r.fmax_mhz, 0.0);
  EXPECT_GT(r.area, 0);
  EXPECT_GT(r.throughput_mops, 0.0);
  EXPECT_GT(r.quality, 0.0);
  std::string table = resilience_table({r});
  EXPECT_NE(table.find("verilog"), std::string::npos);
  EXPECT_NE(table.find("VF"), std::string::npos);
}

}  // namespace
}  // namespace hlshc::fault
