// Parallel execution layer tests: pool lifecycle and clamping, HLSHC_JOBS
// resolution, full index coverage, inline single-job semantics, exception
// propagation (and pool reuse afterwards), input-order parallel_map — plus
// the campaign differential: a 200-site SEU campaign must classify
// identically at jobs 1, 2 and 8, counts and per-run log alike.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "fault/campaign.hpp"
#include "fault/model.hpp"
#include "par/pool.hpp"
#include "par/sweep.hpp"
#include "rtl/designs.hpp"

namespace hlshc::par {
namespace {

/// Scoped HLSHC_JOBS override (default_jobs re-reads the environment on
/// every call, so setenv/unsetenv is all a test needs).
class ScopedJobsEnv {
 public:
  explicit ScopedJobsEnv(const char* value) {
    const char* old = std::getenv("HLSHC_JOBS");
    if (old) saved_ = old;
    had_ = old != nullptr;
    if (value)
      ::setenv("HLSHC_JOBS", value, 1);
    else
      ::unsetenv("HLSHC_JOBS");
  }
  ~ScopedJobsEnv() {
    if (had_)
      ::setenv("HLSHC_JOBS", saved_.c_str(), 1);
    else
      ::unsetenv("HLSHC_JOBS");
  }

 private:
  std::string saved_;
  bool had_ = false;
};

TEST(DefaultJobs, ReadsEnvironment) {
  {
    ScopedJobsEnv env("3");
    EXPECT_EQ(default_jobs(), 3);
  }
  {
    ScopedJobsEnv env("999");  // clamped to a sane ceiling
    EXPECT_EQ(default_jobs(), 256);
  }
  {
    ScopedJobsEnv env("0");  // non-positive: rejected loudly
    EXPECT_THROW(default_jobs(), Error);
  }
  {
    ScopedJobsEnv env("8cores");  // trailing junk: rejected loudly
    EXPECT_THROW(default_jobs(), Error);
  }
  {
    ScopedJobsEnv env(nullptr);
    EXPECT_GE(default_jobs(), 1);
  }
}

/// Scoped HLSHC_LANES override, same contract as ScopedJobsEnv.
class ScopedLanesEnv {
 public:
  explicit ScopedLanesEnv(const char* value) {
    const char* old = std::getenv("HLSHC_LANES");
    if (old) saved_ = old;
    had_ = old != nullptr;
    if (value)
      ::setenv("HLSHC_LANES", value, 1);
    else
      ::unsetenv("HLSHC_LANES");
  }
  ~ScopedLanesEnv() {
    if (had_)
      ::setenv("HLSHC_LANES", saved_.c_str(), 1);
    else
      ::unsetenv("HLSHC_LANES");
  }

 private:
  std::string saved_;
  bool had_ = false;
};

TEST(DefaultLanes, ReadsEnvironmentElseFixedDefault) {
  {
    ScopedLanesEnv env("4");
    EXPECT_EQ(default_lanes(), 4);
  }
  {
    ScopedLanesEnv env("999");  // clamped to the lane ceiling
    EXPECT_EQ(default_lanes(), kMaxLanes);
  }
  {
    ScopedLanesEnv env("0");  // non-positive: rejected loudly
    EXPECT_THROW(default_lanes(), Error);
  }
  {
    // Unset: the fixed default, NOT hardware-derived — batched campaign
    // shapes must be reproducible across hosts.
    ScopedLanesEnv env(nullptr);
    EXPECT_EQ(default_lanes(), kDefaultLanes);
  }
}

// Same validation contract as parse_jobs, for the lanes knobs
// (HLSHC_LANES, every bench's --lanes flag).
TEST(ParseLanes, AcceptsPositiveDecimalAndClamps) {
  EXPECT_EQ(parse_lanes("1", "--lanes"), 1);
  EXPECT_EQ(parse_lanes("32", "--lanes"), 32);
  EXPECT_EQ(parse_lanes("64", "--lanes"), 64);
  EXPECT_EQ(parse_lanes("65", "--lanes"), kMaxLanes);
  EXPECT_EQ(parse_lanes("100000", "HLSHC_LANES"), kMaxLanes);
}

TEST(ParseLanes, RejectsGarbageWithTheKnobName) {
  for (const char* bad :
       {"", "0", "-1", "-8", "8lanes", " 8", "8 ", "3.5", "0x8"}) {
    try {
      parse_lanes(bad, "--lanes");
      FAIL() << "parse_lanes accepted '" << bad << '\'';
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("--lanes"), std::string::npos)
          << "error for '" << bad << "' does not name the knob: " << e.what();
    }
  }
}

// One shared validator for every jobs knob (HLSHC_JOBS, --jobs flags, the
// service's --queue): positive decimal integers only, clamped at kMaxJobs,
// everything else a structured error naming the offending knob.
TEST(ParseJobs, AcceptsPositiveDecimal) {
  EXPECT_EQ(parse_jobs("1", "--jobs"), 1);
  EXPECT_EQ(parse_jobs("8", "--jobs"), 8);
  EXPECT_EQ(parse_jobs("256", "--jobs"), 256);
}

TEST(ParseJobs, ClampsAboveCeiling) {
  EXPECT_EQ(parse_jobs("999", "--jobs"), kMaxJobs);
  EXPECT_EQ(parse_jobs("100000", "HLSHC_JOBS"), kMaxJobs);
}

TEST(ParseJobs, RejectsGarbageWithTheKnobName) {
  for (const char* bad : {"", "0", "-1", "-8", "8cores", "cores8", " 8",
                          "8 ", "3.5", "0x8", "+", "nan"}) {
    try {
      parse_jobs(bad, "--jobs");
      FAIL() << "parse_jobs accepted '" << bad << '\'';
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("--jobs"), std::string::npos)
          << "error for '" << bad << "' does not name the knob: " << e.what();
    }
  }
}

TEST(Pool, JobsClampAndDefault) {
  ScopedJobsEnv env("5");
  EXPECT_EQ(Pool(0).jobs(), 5);
  EXPECT_EQ(Pool(-2).jobs(), 5);
  EXPECT_EQ(Pool(1).jobs(), 1);
  EXPECT_EQ(Pool(4).jobs(), 4);
}

TEST(Pool, ParallelForCoversEveryIndexExactlyOnce) {
  Pool pool(4);
  constexpr int64_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  pool.parallel_for(kN, [&](int64_t i) {
    hits[static_cast<size_t>(i)].fetch_add(1);
  });
  for (int64_t i = 0; i < kN; ++i)
    ASSERT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "index " << i;
}

TEST(Pool, EmptyRangeRunsNothing) {
  Pool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](int64_t) { calls.fetch_add(1); });
  pool.parallel_for(-5, [&](int64_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(Pool, SingleJobRunsInlineInOrder) {
  Pool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<int64_t> order;
  pool.parallel_for(100, [&](int64_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);  // no synchronization needed: same thread
  });
  std::vector<int64_t> expect(100);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(order, expect);
}

TEST(Pool, ExceptionPropagatesAndPoolIsReusable) {
  Pool pool(4);
  EXPECT_THROW(
      pool.parallel_for(500,
                        [&](int64_t i) {
                          if (i == 257) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool must survive a failed loop: run a clean one right after.
  std::atomic<int64_t> sum{0};
  pool.parallel_for(100, [&](int64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 99 * 100 / 2);
}

TEST(Pool, ParallelMapKeepsInputOrder) {
  Pool pool(8);
  std::vector<int64_t> out = pool.parallel_map<int64_t>(
      777, [](int64_t i) { return i * i; });
  ASSERT_EQ(out.size(), 777u);
  for (int64_t i = 0; i < 777; ++i)
    ASSERT_EQ(out[static_cast<size_t>(i)], i * i);
}

TEST(Pool, WorkerIdsStayInRange) {
  Pool pool(4);
  std::vector<std::atomic<int64_t>> per_worker(4);
  for (auto& c : per_worker) c.store(0);
  pool.parallel_for_worker(1000, [&](int worker, int64_t) {
    ASSERT_GE(worker, 0);
    ASSERT_LT(worker, 4);
    per_worker[static_cast<size_t>(worker)].fetch_add(1);
  });
  int64_t total = 0;
  for (auto& c : per_worker) total += c.load();
  EXPECT_EQ(total, 1000);
}

TEST(SweepRunner, MapCollectsInOrderAndCountsSweeps) {
  SweepRunner runner(4);
  auto a = runner.map<int>("alpha", 10, [](int64_t i) {
    return static_cast<int>(i) + 1;
  });
  auto b = runner.map<int>("beta", 5, [](int64_t i) {
    return static_cast<int>(i) * 2;
  });
  EXPECT_EQ(a[9], 10);
  EXPECT_EQ(b[4], 8);
  EXPECT_EQ(runner.sweeps(), 2);
  EXPECT_EQ(runner.points(), 15);
  EXPECT_GT(runner.wall_ns(), 0);
}

// ---- campaign differential -------------------------------------------------

fault::CampaignReport campaign_at(const netlist::Design& d,
                                  const std::vector<fault::FaultSite>& sites,
                                  int jobs) {
  fault::CampaignOptions opts;
  opts.matrices = 2;
  opts.keep_runs = true;
  opts.progress_every = 0;
  opts.jobs = jobs;
  return fault::run_campaign(d, sites, opts);
}

/// The tentpole invariant: classification results are bitwise identical at
/// any worker count — counts and the site-ordered run log.
TEST(CampaignParallel, DifferentialJobs128) {
  netlist::Design d = rtl::build_verilog_opt2();
  auto sites = fault::sample_seu_sites(d, 200, 60, 2026);
  fault::CampaignReport serial = campaign_at(d, sites, 1);
  ASSERT_EQ(serial.runs.size(), 200u);

  for (int jobs : {2, 8}) {
    fault::CampaignReport parallel = campaign_at(d, sites, jobs);
    EXPECT_EQ(parallel.counts.masked, serial.counts.masked) << jobs;
    EXPECT_EQ(parallel.counts.sdc, serial.counts.sdc) << jobs;
    EXPECT_EQ(parallel.counts.detected, serial.counts.detected) << jobs;
    EXPECT_EQ(parallel.counts.hang, serial.counts.hang) << jobs;
    ASSERT_EQ(parallel.runs.size(), serial.runs.size()) << jobs;
    for (size_t i = 0; i < serial.runs.size(); ++i) {
      EXPECT_EQ(parallel.runs[i].outcome, serial.runs[i].outcome)
          << "jobs=" << jobs << " site " << i;
      EXPECT_EQ(parallel.runs[i].site.to_string(),
                serial.runs[i].site.to_string())
          << "jobs=" << jobs << " site " << i;
    }
    EXPECT_EQ(parallel.reference_functional, serial.reference_functional);
  }
}

TEST(CampaignParallel, ProgressReportsCompletedCounts) {
  netlist::Design d = rtl::build_verilog_opt2();
  auto sites = fault::sample_seu_sites(d, 60, 60, 7);
  fault::CampaignOptions opts;
  opts.matrices = 2;
  opts.keep_runs = false;
  opts.progress_every = 10;
  opts.jobs = 4;
  std::mutex mutex;
  std::multiset<int> ticks;
  opts.on_progress = [&](const fault::CampaignProgress& p) {
    std::lock_guard<std::mutex> lock(mutex);
    EXPECT_EQ(p.total, 60);
    EXPECT_EQ(p.completed % 10, 0);
    ticks.insert(p.completed);
  };
  fault::run_campaign(d, sites, opts);
  // Every completion count fires exactly once (the counter is atomic, so
  // each multiple of the cadence is observed by exactly one worker).
  EXPECT_EQ(ticks, (std::multiset<int>{10, 20, 30, 40, 50, 60}));
}

/// Sharding invariance of the site sampler: each site derives its RNG from
/// (seed, index), so the sampled list is independent of how many sites are
/// requested before it.
TEST(CampaignParallel, SampledSitesArePrefixStable) {
  netlist::Design d = rtl::build_verilog_opt2();
  auto small = fault::sample_seu_sites(d, 50, 60, 11);
  auto large = fault::sample_seu_sites(d, 200, 60, 11);
  for (size_t i = 0; i < small.size(); ++i)
    EXPECT_EQ(small[i].to_string(), large[i].to_string()) << i;
}

}  // namespace
}  // namespace hlshc::par
