// Integration: cross-family equivalence. All seven flows implement the
// same ISO 13818-4 algorithm behind the same stream interface, so on the
// realistic input domain they must be mutually bit-identical — matrix for
// matrix — under clean streaming AND under randomized source/sink timing.
// This is the strongest end-to-end statement the reproduction makes: seven
// independently built design families, one behaviour.
#include <gtest/gtest.h>

#include <functional>

#include "axis/testbench.hpp"
#include "base/rng.hpp"
#include "bsv/designs.hpp"
#include "chisel/designs.hpp"
#include "hls/tool.hpp"
#include "idct/chenwang.hpp"
#include "rtl/designs.hpp"
#include "sim/simulator.hpp"
#include "testutil.hpp"
#include "xls/designs.hpp"

namespace hlshc {
namespace {

using testutil::realistic_coeff_block;
using testutil::software_idct;

struct FamilyCase {
  const char* label;
  std::function<netlist::Design()> build;
};

std::vector<FamilyCase> axis_families() {
  return {
      {"verilog_initial", [] { return rtl::build_verilog_initial(); }},
      {"verilog_opt1", [] { return rtl::build_verilog_opt1(); }},
      {"verilog_opt2", [] { return rtl::build_verilog_opt2(); }},
      {"chisel_initial", [] { return chisel::build_chisel_initial(); }},
      {"chisel_opt", [] { return chisel::build_chisel_opt(); }},
      {"bsv_initial", [] { return bsv::build_bsv_initial(); }},
      {"bsv_opt", [] { return bsv::build_bsv_opt(); }},
      {"xls_comb", [] { return xls::build_xls_design({0}).design; }},
      {"xls_p8", [] { return xls::build_xls_design({8}).design; }},
      {"bambu",
       [] { return hls::compile_bambu(hls::idct_source(), {}).design; }},
      {"vhls_opt",
       [] {
         hls::VhlsOptions o;
         o.pragmas = true;
         return hls::compile_vhls(hls::idct_source(), o).design;
       }},
  };
}

class EveryFamily
    : public ::testing::TestWithParam<size_t> {};

TEST_P(EveryFamily, MatchesSoftwareOnCleanStream) {
  FamilyCase fc = axis_families()[GetParam()];
  netlist::Design d = fc.build();
  sim::Simulator sim(d);
  axis::StreamTestbench tb(sim);
  SplitMix64 rng(321);
  std::vector<idct::Block> ins;
  for (int i = 0; i < 4; ++i) ins.push_back(realistic_coeff_block(rng));
  auto out = tb.run(ins, 500000);
  ASSERT_EQ(out.size(), ins.size()) << fc.label;
  for (size_t i = 0; i < ins.size(); ++i)
    EXPECT_EQ(out[i], software_idct(ins[i])) << fc.label << " matrix " << i;
  EXPECT_TRUE(tb.monitor().clean()) << fc.label;
}

TEST_P(EveryFamily, MatchesSoftwareUnderRandomizedTiming) {
  FamilyCase fc = axis_families()[GetParam()];
  netlist::Design d = fc.build();
  // Three timing scenarios: slow source, bursty sink, both.
  struct Timing {
    int gap, stall, period;
  };
  for (Timing t : {Timing{2, 0, 0}, Timing{0, 3, 5}, Timing{1, 1, 3}}) {
    sim::Simulator sim(d);
    axis::StreamTestbench tb(sim);
    tb.source().set_gap_cycles(t.gap);
    if (t.period) tb.sink().set_backpressure(t.stall, t.period);
    SplitMix64 rng(654 + t.gap);
    std::vector<idct::Block> ins;
    for (int i = 0; i < 3; ++i) ins.push_back(realistic_coeff_block(rng));
    auto out = tb.run(ins, 500000);
    for (size_t i = 0; i < ins.size(); ++i)
      EXPECT_EQ(out[i], software_idct(ins[i]))
          << fc.label << " gap=" << t.gap << " stall=" << t.stall;
    EXPECT_TRUE(tb.monitor().clean()) << fc.label;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, EveryFamily, ::testing::Range<size_t>(0, 11),
    [](const ::testing::TestParamInfo<size_t>& info) {
      return axis_families()[info.param].label;
    });

TEST(CrossFamily, AllDesignsAgreeWithEachOtherExactly) {
  SplitMix64 rng(987);
  std::vector<idct::Block> ins;
  for (int i = 0; i < 2; ++i) ins.push_back(realistic_coeff_block(rng));
  std::vector<idct::Block> reference;
  for (const auto& b : ins) reference.push_back(software_idct(b));

  for (const FamilyCase& fc : axis_families()) {
    netlist::Design d = fc.build();
    sim::Simulator sim(d);
    axis::StreamTestbench tb(sim);
    auto out = tb.run(ins, 500000);
    EXPECT_EQ(out, reference) << fc.label;
  }
}

}  // namespace
}  // namespace hlshc
